// The manifest: the single small file that makes restart O(WAL tail).
// It records which segment files are live (per level) and the next file
// sequence number; everything else in the directory — orphaned segments
// from a crash mid-flush, .tmp files from an interrupted rename — is
// swept at open. The manifest itself is a CRC-framed JSON document
// replaced atomically (write .tmp → sync → rename → dir sync), so a
// crash leaves either the old or the new manifest, never a torn one.
//
// WAL files are deliberately NOT listed: the store replays every
// wal-*.log present, in sequence order. A flushed WAL is deleted only
// after the manifest commits its segment, so a crash in between replays
// the same data twice — harmless, since the memtable's newest-wins
// insert makes replay idempotent.
package tiered

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/persist"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "LOOPMAN1"
)

// SegmentMeta describes one live segment as the manifest records it.
type SegmentMeta struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Count  int64  `json:"count"`
	MinKey string `json:"min_key"`
	MaxKey string `json:"max_key"`
}

// seq extracts the file sequence number from a seg-/wal- name; 0 if the
// name doesn't parse.
func seqOf(name string) uint64 {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".sst"), ".log")
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0
	}
	var n uint64
	if _, err := fmt.Sscanf(base[i+1:], "%d", &n); err != nil {
		return 0
	}
	return n
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.sst", seq) }
func walName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// manifest is the persisted store state.
type manifest struct {
	// Seq is the next unused file sequence number. Monotone across the
	// store's whole life so file names are never reused.
	Seq uint64 `json:"seq"`
	// L0 holds flush outputs, newest last. L0 segments may overlap in
	// key range; reads scan them newest-first.
	L0 []SegmentMeta `json:"l0"`
	// L1 holds compaction outputs: one sorted run, non-overlapping,
	// ordered by MinKey.
	L1 []SegmentMeta `json:"l1"`
}

// saveManifest atomically replaces the manifest file.
func saveManifest(fsys persist.FS, dir string, m *manifest) error {
	doc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf := append([]byte(manifestMagic), appendFrame(nil, doc)...)
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// loadManifest reads the manifest; a missing file yields a fresh empty
// one (first boot). A corrupt manifest is an error — the caller must not
// guess at which segments are live.
func loadManifest(fsys persist.FS, dir string) (*manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{Seq: 1}, nil
		}
		return nil, err
	}
	if len(data) < len(manifestMagic)+8 || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: manifest header", errCorrupt)
	}
	body := data[len(manifestMagic):]
	plen := binary.LittleEndian.Uint32(body[0:4])
	if int(plen) != len(body)-8 {
		return nil, fmt.Errorf("%w: manifest length", errCorrupt)
	}
	payload := body[8:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[4:8]) {
		return nil, fmt.Errorf("%w: manifest checksum", errCorrupt)
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest json: %v", errCorrupt, err)
	}
	if m.Seq == 0 {
		m.Seq = 1
	}
	return &m, nil
}

// live reports every segment name the manifest references.
func (m *manifest) live() map[string]bool {
	out := make(map[string]bool, len(m.L0)+len(m.L1))
	for _, s := range m.L0 {
		out[s.Name] = true
	}
	for _, s := range m.L1 {
		out[s.Name] = true
	}
	return out
}

// maxSeq returns the highest sequence number referenced by any live
// segment or present file, so Seq can be advanced past crash leftovers.
func maxSeq(m *manifest, names []string) uint64 {
	top := m.Seq
	bump := func(n uint64) {
		if n >= top {
			top = n + 1
		}
	}
	for _, s := range m.L0 {
		bump(seqOf(s.Name))
	}
	for _, s := range m.L1 {
		bump(seqOf(s.Name))
	}
	for _, name := range names {
		bump(seqOf(name))
	}
	return top
}

// sweepOrphans removes segment and temp files the manifest does not
// reference: the debris of a crash between segment rename and manifest
// commit. WAL files are never swept here — they are replayed, then
// retired by flush.
func sweepOrphans(fsys persist.FS, dir string, m *manifest, names []string) {
	liveSet := m.live()
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = fsys.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".sst") && !liveSet[name]:
			_ = fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// listDir enumerates a directory's entry names. The persist.FS seam has
// no ReadDir (nothing else needed one); directory listing is a read-only
// operation with no failure-injection value, so it goes straight to the
// os package.
func listDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
