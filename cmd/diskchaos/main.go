// Command diskchaos is the storage-fault smoke harness: it drives the
// daemon's durable store through seeded disk-fault plans and asserts the
// full robustness contract end to end.
//
// Four phases, each from a clean state directory:
//
//  1. No-op identity — a fault-free plan over the injection FS must leave
//     snapshot.dat and wal.log byte-identical to the real filesystem.
//  2. Degraded latch under concurrent load — an armed WAL-fsync fault
//     latches the store read-only exactly once; cached reads keep
//     serving 200 while new plans answer 503 + Retry-After + the
//     read-only header; a restart on the real filesystem recovers every
//     acked plan bit-identically (zero acked-durable loss).
//  3. Seeded fault matrix — GeneratePlan(seed+i) cycles at the persist
//     layer: every write-path failure mode latches ErrDegraded, stays
//     sticky, and a real-FS reopen recovers every acked record in order.
//     A rename-failure cycle asserts failed compaction leaves no
//     snapshot.tmp behind. -plan replays a JSON plan file instead.
//  4. Two-shard repair — on-disk corruption in a stopped shard's
//     snapshot is quarantined on restart and healed from the standby via
//     anti-entropy; corruption under a running shard's feet is found by
//     the scrubber and compacted away from the live cache; a read-only
//     owner's writes fail over to the healthy forwarder.
//
// Exit code 0 and a final PASS line mean the contract held.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/internal/diskchaos"
	"repro/internal/persist"
	"repro/internal/serve"
)

var discard = slog.New(slog.NewTextHandler(io.Discard, nil))

func logf(format string, a ...any) { fmt.Printf("diskchaos: "+format+"\n", a...) }

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "diskchaos: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

func main() {
	seed := flag.Uint64("seed", 1, "base seed for generated fault plans")
	cycles := flag.Int("cycles", 6, "seeded fault-matrix cycles in phase 3")
	planPath := flag.String("plan", "", "replay a JSON fault plan file instead of generating phase-3 plans")
	flag.Parse()

	root, err := os.MkdirTemp("", "diskchaos-*")
	if err != nil {
		fail("mkdtemp: %v", err)
	}

	phaseNoOp(filepath.Join(root, "p1"))
	phaseDegradedLatch(filepath.Join(root, "p2"), *seed)
	phaseFaultMatrix(filepath.Join(root, "p3"), *seed, *cycles, *planPath)
	phaseClusterRepair(filepath.Join(root, "p4"))

	os.RemoveAll(root)
	fmt.Println("diskchaos: PASS")
}

// --- helpers ---

func mkdir(dir string) string {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail("mkdir %s: %v", dir, err)
	}
	return dir
}

// genBodies yields n distinct plan-request bodies over the built-in
// kernels, cheap enough that a full phase computes in well under a second.
func genBodies(n int) []string {
	kernels := []string{"l1", "matvec", "matmul"}
	out := make([]string, 0, n)
	for size := int64(4); len(out) < n; size++ {
		for _, k := range kernels {
			out = append(out, fmt.Sprintf(`{"kernel": %q, "size": %d, "cube_dim": 3}`, k, size))
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func get(url string) (*http.Response, []byte) {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail("read %s response: %v", url, err)
	}
	return resp, data
}

func post(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fail("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail("read %s response: %v", url, err)
	}
	return resp, data
}

// normalize strips the per-request metadata (cache outcome, cluster
// routing) so plan payloads can be compared for byte identity across
// restarts and forwarding paths.
func normalize(body []byte) string {
	var pr api.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		fail("normalize: undecodable plan response %q: %v", body, err)
	}
	pr.Cache = ""
	pr.Cluster = nil
	b, err := json.Marshal(pr)
	if err != nil {
		fail("normalize: %v", err)
	}
	return string(b)
}

func cacheOutcome(body []byte) api.CacheOutcome {
	var pr api.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		fail("undecodable plan response %q: %v", body, err)
	}
	return pr.Cache
}

func waitFor(d time.Duration, what string, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	fail("timeout waiting for %s", what)
}

// corruptByte flips one bit of a payload byte inside the file's frame
// area, past the 8-byte magic and the first frame header.
func corruptByte(path string, off int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("corrupt %s: %v", path, err)
	}
	if len(data) <= off {
		fail("corrupt %s: file too small (%d bytes) for offset %d", path, len(data), off)
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail("corrupt %s: %v", path, err)
	}
}

// shard is one in-process daemon on a real TCP listener, so a stopped
// shard can be restarted on the same address.
type shard struct {
	srv  *serve.Server
	hs   *http.Server
	addr string
	url  string
}

func startShard(addr string, cfg serve.Config) (*shard, serve.RecoveryStats) {
	if cfg.Logger == nil {
		cfg.Logger = discard
	}
	srv := serve.New(cfg)
	rs, err := srv.Recover(context.Background())
	if err != nil {
		fail("recover %s: %v", cfg.StateDir, err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail("listen %s: %v", addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	got := ln.Addr().String()
	return &shard{srv: srv, hs: hs, addr: got, url: "http://" + got}, rs
}

func (sh *shard) stop() {
	sh.hs.Close()
	sh.srv.Close()
}

// --- phase 1: fault-free no-op identity ---

// An empty fault plan must be a strict pass-through: the identical append
// + compact + append sequence on the real FS and on the injection FS must
// leave byte-identical store files, and reopen to the same records.
func phaseNoOp(root string) {
	logf("phase 1: fault-free plan is a no-op (byte-identical store files)")
	dirReal, dirFault := mkdir(filepath.Join(root, "real")), mkdir(filepath.Join(root, "fault"))
	ffs, err := diskchaos.New(diskchaos.Plan{})
	if err != nil {
		fail("build fault FS: %v", err)
	}

	run := func(dir string, fs persist.FS) {
		store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: fs})
		if err != nil {
			fail("open %s: %v", dir, err)
		}
		var recs []persist.Record
		for i := 0; i < 8; i++ {
			rec := persist.Record{Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf(`{"i":%d}`, i))}
			recs = append(recs, rec)
			if err := store.Append(rec); err != nil {
				fail("append %s #%d: %v", dir, i, err)
			}
		}
		if err := store.Compact(recs[:5]); err != nil {
			fail("compact %s: %v", dir, err)
		}
		for i := 8; i < 11; i++ {
			if err := store.Append(persist.Record{Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf(`{"i":%d}`, i))}); err != nil {
				fail("append %s #%d: %v", dir, i, err)
			}
		}
		if err := store.Close(); err != nil {
			fail("close %s: %v", dir, err)
		}
	}
	run(dirReal, nil)
	run(dirFault, ffs)

	for _, name := range []string{"snapshot.dat", "wal.log"} {
		a, err := os.ReadFile(filepath.Join(dirReal, name))
		if err != nil {
			fail("read real %s: %v", name, err)
		}
		b, err := os.ReadFile(filepath.Join(dirFault, name))
		if err != nil {
			fail("read fault %s: %v", name, err)
		}
		if !bytes.Equal(a, b) {
			fail("%s differs between real FS (%d bytes) and fault-free injection FS (%d bytes)", name, len(a), len(b))
		}
	}
	if n := ffs.TotalInjected(); n != 0 {
		fail("empty plan injected %d faults", n)
	}
	logf("phase 1: OK (snapshot.dat and wal.log byte-identical, 0 faults injected)")
}

// --- phase 2: degraded latch under concurrent load, zero acked loss ---

func phaseDegradedLatch(root string, seed uint64) {
	logf("phase 2: WAL fault latches read-only under concurrent load")
	dir := mkdir(filepath.Join(root, "state"))
	ffs, err := diskchaos.New(diskchaos.Plan{Seed: seed})
	if err != nil {
		fail("build fault FS: %v", err)
	}
	sh, _ := startShard("127.0.0.1:0", serve.Config{
		StateDir: dir, Fsync: "always", FS: ffs, ScrubInterval: -1,
	})

	// Warm 12 plans while the disk is healthy; these are the acked set.
	bodies := genBodies(40)
	warm, fresh := bodies[:12], bodies[12:]
	acked := make(map[string]string, len(warm))
	for _, b := range warm {
		resp, data := post(sh.url+"/v1/plan", b)
		if resp.StatusCode != http.StatusOK {
			fail("warmup %s: %s: %s", b, resp.Status, data)
		}
		acked[b] = normalize(data)
	}

	rules := []diskchaos.Rule{{Op: diskchaos.OpSync, Path: "wal.log", Kind: diskchaos.KindEIO, Count: -1}}
	rj, _ := json.Marshal(diskchaos.Plan{Seed: seed, Rules: rules})
	logf("phase 2: arming fault plan %s", rj)
	if err := ffs.Arm(rules); err != nil {
		fail("arm: %v", err)
	}

	// Concurrent load against the faulted disk: warm keys must keep
	// serving from cache, every new plan must answer the read-only 503.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range warm {
				resp, data := post(sh.url+"/v1/plan", b)
				if resp.StatusCode != http.StatusOK || cacheOutcome(data) != api.CacheHit {
					errCh <- fmt.Errorf("cached read during fault: %s cache=%q", resp.Status, cacheOutcome(data))
					return
				}
			}
			for _, b := range fresh {
				resp, _ := post(sh.url+"/v1/plan", b)
				if resp.StatusCode != http.StatusServiceUnavailable {
					errCh <- fmt.Errorf("new plan during fault: %s, want 503", resp.Status)
					return
				}
				if resp.Header.Get(api.ReadOnlyHeader) != "1" || resp.Header.Get("Retry-After") == "" {
					errCh <- fmt.Errorf("read-only 503 missing headers: %v", resp.Header)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fail("concurrent load: %v", err)
	default:
	}

	snap := sh.srv.Metrics()
	if snap.StoreDegraded != 1 {
		fail("store_degraded gauge = %d, want 1 (latch exactly once)", snap.StoreDegraded)
	}
	if snap.WALAppends != int64(len(warm)) {
		fail("wal appends = %d, want %d: a failed write was acked", snap.WALAppends, len(warm))
	}
	ready, readyBody := get(sh.url + "/readyz")
	if ready.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(readyBody), "degraded") {
		fail("/readyz = %s %q, want degraded 503", ready.Status, readyBody)
	}
	if health, _ := get(sh.url + "/healthz"); health.StatusCode != http.StatusOK {
		fail("/healthz = %s, want 200 while degraded", health.Status)
	}
	sh.stop()

	// Restart on the real filesystem: every acked plan must recover and
	// serve bit-identically from the warm cache.
	sh2, rs := startShard("127.0.0.1:0", serve.Config{
		StateDir: dir, Fsync: "always", ScrubInterval: -1,
	})
	// A failed fsync may still have left its written frame in the WAL, so
	// replay can legitimately recover more than was acked — never less.
	if rs.Recovered < len(warm) {
		fail("recovered %d plans, want >= %d (acked-durable loss)", rs.Recovered, len(warm))
	}
	for _, b := range warm {
		resp, data := post(sh2.url+"/v1/plan", b)
		if resp.StatusCode != http.StatusOK || cacheOutcome(data) != api.CacheHit {
			fail("recovered plan %s: %s cache=%q, want warm hit", b, resp.Status, cacheOutcome(data))
		}
		if got := normalize(data); got != acked[b] {
			fail("recovered plan %s differs:\n  before: %s\n  after:  %s", b, acked[b], got)
		}
	}
	sh2.stop()
	logf("phase 2: OK (%d acked plans survived, latch fired once, reads served throughout)", len(warm))
}

// --- phase 3: seeded fault matrix at the persist layer ---

// runFaultCycle drives one store over a fault plan: appends until the
// plan's failure strikes, asserts the sticky degraded latch, then reopens
// on the real filesystem and verifies every acked record in order.
func runFaultCycle(dir string, plan diskchaos.Plan) {
	ffs, err := diskchaos.New(plan)
	if err != nil {
		fail("plan %s: %v", plan, err)
	}
	var degradeCalls int
	store, _, _, err := persist.Open(dir, persist.Options{
		Fsync: persist.FsyncAlways, FS: ffs,
		OnDegrade: func(error) { degradeCalls++ },
	})
	if err != nil {
		fail("plan %s: open: %v", plan, err)
	}
	acked := 0
	var recs []persist.Record
	for i := 0; i < 20; i++ {
		rec := persist.Record{Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf(`{"i":%d}`, i))}
		if err := store.Append(rec); err != nil {
			if !errors.Is(err, persist.ErrDegraded) {
				fail("plan %s: append error not ErrDegraded: %v", plan, err)
			}
			break
		}
		recs = append(recs, rec)
		acked++
	}
	if len(plan.Rules) > 0 {
		if acked == 20 {
			fail("plan %s: no fault fired in 20 appends", plan)
		}
		if !store.Degraded() {
			fail("plan %s: store not degraded after fault", plan)
		}
		if err := store.Append(persist.Record{Key: "late", Value: []byte("x")}); !errors.Is(err, persist.ErrDegraded) {
			fail("plan %s: latch not sticky: %v", plan, err)
		}
		if degradeCalls != 1 {
			fail("plan %s: OnDegrade fired %d times, want 1", plan, degradeCalls)
		}
	}
	store.Close()

	reopened, got, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		fail("plan %s: real-FS reopen: %v", plan, err)
	}
	defer reopened.Close()
	if len(got) < acked {
		fail("plan %s: reopen found %d records, acked %d (acked-durable loss)", plan, len(got), acked)
	}
	for i := 0; i < acked; i++ {
		if got[i].Key != recs[i].Key || !bytes.Equal(got[i].Value, recs[i].Value) {
			fail("plan %s: record %d mismatch: %q vs acked %q", plan, i, got[i].Key, recs[i].Key)
		}
	}
}

func phaseFaultMatrix(root string, seed uint64, cycles int, planPath string) {
	if planPath != "" {
		data, err := os.ReadFile(planPath)
		if err != nil {
			fail("read plan file: %v", err)
		}
		var plan diskchaos.Plan
		if err := json.Unmarshal(data, &plan); err != nil {
			fail("parse plan file: %v", err)
		}
		logf("phase 3: replaying plan file %s: %s", planPath, plan)
		runFaultCycle(mkdir(filepath.Join(root, "replay")), plan)
		logf("phase 3: OK (replayed plan held the contract)")
		return
	}

	logf("phase 3: %d seeded write-fault cycles (base seed %d)", cycles, seed)
	for c := 0; c < cycles; c++ {
		plan := diskchaos.GeneratePlan(seed + uint64(c))
		logf("phase 3: cycle %d plan %s", c, plan)
		runFaultCycle(mkdir(filepath.Join(root, fmt.Sprintf("c%02d", c))), plan)
	}

	// Rename-failure compaction cycle: the snapshot swap fails, the store
	// latches, no stale snapshot.tmp survives, and the WAL still recovers
	// everything.
	dir := mkdir(filepath.Join(root, "rename"))
	plan := diskchaos.Plan{Seed: seed, Rules: []diskchaos.Rule{
		{Op: diskchaos.OpRename, Path: "snapshot.tmp", Kind: diskchaos.KindEIO, Count: -1},
	}}
	logf("phase 3: compaction-rename cycle plan %s", plan)
	ffs, err := diskchaos.New(plan)
	if err != nil {
		fail("rename plan: %v", err)
	}
	store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: ffs})
	if err != nil {
		fail("rename cycle open: %v", err)
	}
	var recs []persist.Record
	for i := 0; i < 5; i++ {
		rec := persist.Record{Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf(`{"i":%d}`, i))}
		recs = append(recs, rec)
		if err := store.Append(rec); err != nil {
			fail("rename cycle append: %v", err)
		}
	}
	if err := store.Compact(recs); !errors.Is(err, persist.ErrDegraded) {
		fail("failed compaction returned %v, want ErrDegraded", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !errors.Is(err, os.ErrNotExist) {
		fail("stale snapshot.tmp left behind after failed compaction: %v", err)
	}
	store.Close()
	reopened, got, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		fail("rename cycle reopen: %v", err)
	}
	if len(got) != len(recs) {
		fail("rename cycle reopen found %d records, want %d", len(got), len(recs))
	}
	reopened.Close()
	logf("phase 3: OK (every fault latched, stayed sticky, and lost nothing acked)")
}

// --- phase 4: two-shard quarantine, anti-entropy repair, live scrub ---

func phaseClusterRepair(root string) {
	logf("phase 4: two-shard corruption repair via quarantine + anti-entropy")
	dirA, dirB := mkdir(filepath.Join(root, "a")), mkdir(filepath.Join(root, "b"))
	ffsB, err := diskchaos.New(diskchaos.Plan{})
	if err != nil {
		fail("build fault FS: %v", err)
	}
	cfgA := serve.Config{StateDir: dirA, Fsync: "always", ScrubInterval: -1, WALMaxBytes: 512}
	cfgB := serve.Config{StateDir: dirB, Fsync: "always", ScrubInterval: -1, WALMaxBytes: 512, FS: ffsB}

	shA, _ := startShard("127.0.0.1:0", cfgA)
	shB, _ := startShard("127.0.0.1:0", cfgB)
	urls := []string{shA.url, shB.url}
	enable := func(sh *shard, id int) {
		if err := sh.srv.EnableCluster(serve.ClusterOptions{
			SelfID: id, Peers: urls,
			ProbeInterval: 100 * time.Millisecond, ProbeTimeout: 500 * time.Millisecond,
			FailThreshold: 2, AntiEntropyInterval: 150 * time.Millisecond,
		}); err != nil {
			fail("enable cluster shard %d: %v", id, err)
		}
	}
	enable(shA, 0)
	enable(shB, 1)
	waitFor(5*time.Second, "cluster membership", func() bool {
		for _, sh := range []*shard{shA, shB} {
			snap := sh.srv.Metrics()
			if snap.ClusterN != 2 {
				return false
			}
			for _, p := range snap.ClusterPeers {
				if !p.Alive {
					return false
				}
			}
		}
		return true
	})

	// Drive enough keys through shard A that both shards compact their
	// WALs into snapshots (replicas persist on the standby too).
	bodies := genBodies(24)
	want := make(map[string]string, len(bodies))
	for _, b := range bodies {
		resp, data := post(shA.url+"/v1/plan", b)
		if resp.StatusCode != http.StatusOK {
			fail("load %s: %s: %s", b, resp.Status, data)
		}
		want[b] = normalize(data)
	}
	waitFor(15*time.Second, "snapshots on both shards", func() bool {
		return shA.srv.Metrics().SnapshotBytes > 8 && shB.srv.Metrics().SnapshotBytes > 8
	})
	// Convergence: a clean anti-entropy round on each shard after the
	// load means owner and standby hold identical record sets.
	baseA := shA.srv.Metrics().AntiEntropyCleanRounds
	baseB := shB.srv.Metrics().AntiEntropyCleanRounds
	waitFor(15*time.Second, "anti-entropy convergence", func() bool {
		return shA.srv.Metrics().AntiEntropyCleanRounds > baseA &&
			shB.srv.Metrics().AntiEntropyCleanRounds > baseB
	})
	entriesA := shA.srv.Metrics().CacheEntries

	// Stop shard A, flip one payload byte in its snapshot, restart it on
	// the same address. Recovery must quarantine the bad frame, and
	// anti-entropy must heal the missing record from the standby before
	// any client asks for it.
	shA.stop()
	corruptByte(filepath.Join(dirA, "snapshot.dat"), 20)
	logf("phase 4: corrupted %s byte 20; restarting shard A on %s", filepath.Join(dirA, "snapshot.dat"), shA.addr)
	shA2, rs := startShard(shA.addr, cfgA)
	if rs.QuarantinedRegions < 1 {
		fail("restart after corruption quarantined %d regions, want >= 1 (stats %+v)", rs.QuarantinedRegions, rs)
	}
	enable(shA2, 0)
	waitFor(20*time.Second, "anti-entropy repair of the quarantined record", func() bool {
		return shA2.srv.Metrics().CacheEntries >= entriesA
	})
	snapA := shA2.srv.Metrics()
	snapB := shB.srv.Metrics()
	if snapA.AntiEntropyRecordsPulled+snapB.AntiEntropyRecordsPushed < 1 {
		fail("repair happened without anti-entropy traffic: pulled=%d pushed=%d",
			snapA.AntiEntropyRecordsPulled, snapB.AntiEntropyRecordsPushed)
	}
	for _, b := range bodies {
		resp, data := post(shA2.url+"/v1/plan", b)
		if resp.StatusCode != http.StatusOK {
			fail("post-repair %s: %s", b, resp.Status)
		}
		if got := normalize(data); got != want[b] {
			fail("post-repair plan %s differs:\n  before: %s\n  after:  %s", b, want[b], got)
		}
	}
	logf("phase 4: quarantine + anti-entropy repair OK (%d records verified byte-identical)", len(bodies))

	// Live scrub: corrupt the running standby's snapshot under its feet.
	// ScrubNow must flag it, and the repair compaction from the live
	// cache must leave the next pass clean without latching the store.
	corruptByte(filepath.Join(dirB, "snapshot.dat"), 20)
	rep, ok := shB.srv.ScrubNow()
	if !ok || rep.Clean() {
		fail("scrub missed live corruption: ok=%v report=%+v", ok, rep)
	}
	waitFor(10*time.Second, "scrub repair compaction", func() bool {
		rep, ok := shB.srv.ScrubNow()
		return ok && rep.Clean()
	})
	snapB = shB.srv.Metrics()
	if snapB.ScrubCorrupt < 1 || snapB.ScrubRepairs < 1 {
		fail("scrub counters after repair: corrupt=%d repairs=%d", snapB.ScrubCorrupt, snapB.ScrubRepairs)
	}
	if snapB.StoreDegraded != 0 {
		fail("repairable corruption latched the store")
	}
	_, metBody := get(shB.url + "/metrics")
	for _, gauge := range []string{
		"loopmapd_wal_bytes", "loopmapd_snapshot_bytes",
		"loopmapd_scrub_runs_total", "loopmapd_scrub_corrupt_total",
		"loopmapd_store_degraded 0",
	} {
		if !strings.Contains(string(metBody), gauge) {
			fail("/metrics missing %q", gauge)
		}
	}
	logf("phase 4: live scrub repair OK (dirty pass, compaction, clean pass)")

	// Read-only owner failover: latch shard B's store and post new
	// B-owned plans through A. The forward comes back 503 + read-only,
	// and A must serve the plan locally instead of failing the request.
	if err := ffsB.Arm([]diskchaos.Rule{
		{Op: diskchaos.OpSync, Path: "wal.log", Kind: diskchaos.KindEIO, Count: -1},
	}); err != nil {
		fail("arm shard B: %v", err)
	}
	extra := genBodies(40)[24:]
	var roBody string
	for _, b := range extra {
		resp, _ := post(shA2.url+"/v1/plan", b)
		if resp.StatusCode != http.StatusOK {
			fail("plan %s via healthy forwarder: %s", b, resp.Status)
		}
		if shA2.srv.Metrics().ForwardReadOnlyLocal >= 1 {
			roBody = b
			break
		}
	}
	if roBody == "" {
		fail("no B-owned key found in %d attempts; forward_readonly_local never fired", len(extra))
	}
	// The same key straight at the degraded owner is an honest 503: B is
	// its HRW primary, never computed it (the latch rejects before
	// compute), and A's local serve did not replicate back.
	resp, _ := post(shB.url+"/v1/plan", roBody)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(api.ReadOnlyHeader) != "1" {
		fail("degraded owner answered %s to a new plan, want read-only 503", resp.Status)
	}
	logf("phase 4: read-only owner failover OK (forwarder served locally)")

	shA2.stop()
	shB.stop()
}
