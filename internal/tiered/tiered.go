// Package tiered is the on-disk plan tier behind the RAM LRU: a small
// LSM tree purpose-built as a durable cache. Writes append to a WAL and
// land in a memtable; when the memtable outgrows its budget it freezes
// and flushes to an immutable L0 segment; background compaction merges
// L0 segments and the L1 run into a fresh non-overlapping L1, dropping
// superseded keys. A read consults memtable → frozen memtable → L0
// (newest first) → L1, pruned by per-segment bloom filters so an absent
// key usually costs zero disk reads and a present one costs exactly one
// block read.
//
// Restart is O(WAL tail): the MANIFEST names the live segments (opened
// by reading footer+bloom+index only) and the store replays just the
// wal-*.log files — which flushing retires promptly — instead of its
// whole history.
//
// The tier is a cache with durability, not a database: when the disk
// budget is exceeded, compaction evicts whole segments (coarse,
// write-recency-ordered — see compact), and the owner recomputes any
// key that was dropped. Every write-path failure latches a sticky
// degraded read-only state whose errors wrap persist.ErrDegraded, so
// the serving layer's PR-9 read-only handling applies unchanged. All
// file I/O goes through persist.FS, which keeps the diskchaos fault
// matrix in play for every path here.
package tiered

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
)

// Config tunes a Store.
type Config struct {
	// Dir is the tier's directory (created if missing).
	Dir string
	// FS is the filesystem seam (default: the real one).
	FS persist.FS
	// Fsync is the WAL durability policy; Interval is the FsyncInterval
	// flush period (default 100ms).
	Fsync    persist.Policy
	Interval time.Duration
	// MemtableBytes triggers a flush once the memtable holds this much
	// key+value data (default 4 MiB).
	MemtableBytes int64
	// BudgetBytes caps total segment bytes; 0 means unbounded. Exceeding
	// it makes the next compaction evict oldest-generation segments.
	BudgetBytes int64
	// CompactTrigger is how many L0 segments accumulate before a
	// background compaction starts (default 4).
	CompactTrigger int
	// OnDegrade, if set, fires exactly once when the store latches
	// degraded, outside the store's locks.
	OnDegrade func(cause error)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = persist.OS()
	}
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 4 << 20
	}
	if c.CompactTrigger <= 0 {
		c.CompactTrigger = 4
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// Stats is a snapshot of the tier's counters and gauges.
type Stats struct {
	// Counters.
	DiskHits       int64 // Gets served from a segment (or pre-flush memtable)
	DiskMisses     int64 // Gets not found anywhere in the tier
	BloomNegatives int64 // segment probes answered "definitely absent" without a disk read
	Flushes        int64 // memtable → L0 segment flushes
	Compactions    int64 // completed compaction runs
	Evictions      int64 // segments dropped to stay under BudgetBytes
	Corruptions    int64 // CRC/decode failures observed on reads
	Quarantined    int64 // segments quarantined (dropped from the manifest)

	// Gauges.
	Segments int64 // live segment files
	Bytes    int64 // total segment bytes on disk
	Keys     int64 // entries across segments (counts duplicates) + memtable
	WALBytes int64 // active WAL tail size
}

// Store is the tiered disk cache. Safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	mem      map[string][]byte // active memtable
	memBytes int64
	frozen   map[string][]byte // memtable being flushed (nil when idle)
	man      *manifest
	l0       []*segment // parallel to man.L0 (oldest first)
	l1       []*segment // parallel to man.L1 (sorted by MinKey)
	wal      persist.File
	walSeq   uint64
	walBytes int64
	oldWALs  []uint64 // replayed-but-unflushed WAL seqs, retired by flush
	flushing bool
	closed   bool

	degraded     error // latched first write failure (nil = healthy)
	degradeFired bool

	compacting atomic.Bool
	bg         sync.WaitGroup

	// counters (atomics so Get never takes mu for bookkeeping)
	diskHits, diskMisses, bloomNegs atomic.Int64
	flushes, compactions, evictions atomic.Int64
	corruptions, quarantined        atomic.Int64
}

// Open recovers a tiered store from dir. It loads the manifest, opens
// the live segments (footer/bloom/index reads only — no data scan),
// sweeps crash debris, and replays the WAL tail into the memtable. The
// returned records are that tail, in replay order with newest-wins
// dedup, so the owner can rebuild its RAM state from exactly the data
// that never reached a segment.
func Open(cfg Config) (*Store, []persist.Record, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("tiered: Dir required")
	}
	fsys := cfg.FS
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	man, err := loadManifest(fsys, cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	names, err := listDir(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	man.Seq = maxSeq(man, names)
	sweepOrphans(fsys, cfg.Dir, man, names)

	s := &Store{
		cfg: cfg,
		mem: make(map[string][]byte),
		man: man,
	}

	// Open live segments; one that fails its structural checks is
	// quarantined on the spot (the cache recomputes; anti-entropy heals).
	openLevel := func(metas []SegmentMeta) ([]SegmentMeta, []*segment) {
		keptMeta := metas[:0]
		var kept []*segment
		for _, meta := range metas {
			seg, err := openSegment(fsys, cfg.Dir, meta)
			if err != nil {
				s.quarantined.Add(1)
				s.corruptions.Add(1)
				_ = fsys.Remove(filepath.Join(cfg.Dir, meta.Name))
				continue
			}
			keptMeta = append(keptMeta, seg.meta)
			kept = append(kept, seg)
		}
		return keptMeta, kept
	}
	l0Before, l1Before := len(man.L0), len(man.L1)
	man.L0, s.l0 = openLevel(man.L0)
	man.L1, s.l1 = openLevel(man.L1)
	if len(man.L0) != l0Before || len(man.L1) != l1Before {
		if err := saveManifest(fsys, cfg.Dir, man); err != nil {
			s.closeSegments()
			return nil, nil, err
		}
	}

	// Replay every WAL present, oldest first, so a later write to the
	// same key wins. Normally there is exactly one (the active tail); a
	// crash mid-flush leaves the frozen WAL too, and replaying both just
	// reconstructs the pre-crash memtable.
	var walSeqs []uint64
	for _, name := range names {
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			walSeqs = append(walSeqs, seqOf(name))
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	var tail []persist.Record
	pos := make(map[string]int)
	for _, seq := range walSeqs {
		path := filepath.Join(cfg.Dir, walName(seq))
		recs, goodOff, _, tailErr := persist.ReplayLog(fsys, path)
		if tailErr != nil {
			// Torn tail (the crash's final partial frame): truncate the
			// file to its last good record, same repair the WAL makes.
			if f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
				_ = f.Truncate(goodOff)
				_ = f.Sync()
				_ = f.Close()
			}
		}
		for _, rec := range recs {
			val := append([]byte(nil), rec.Value...)
			if old, ok := s.mem[rec.Key]; ok {
				s.memBytes -= int64(len(rec.Key) + len(old))
			}
			s.mem[rec.Key] = val
			s.memBytes += int64(len(rec.Key) + len(val))
			if i, ok := pos[rec.Key]; ok {
				tail[i] = persist.Record{Key: rec.Key, Value: val}
			} else {
				pos[rec.Key] = len(tail)
				tail = append(tail, persist.Record{Key: rec.Key, Value: val})
			}
		}
	}

	// The replayed WALs stay on disk (their data lives only in the
	// memtable) until a flush makes it segment-durable; new appends go to
	// a fresh WAL so retirement never races the active file.
	s.oldWALs = walSeqs
	s.walSeq = man.Seq
	man.Seq++
	f, err := fsys.OpenFile(filepath.Join(cfg.Dir, walName(s.walSeq)), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		s.closeSegments()
		return nil, nil, err
	}
	s.wal = f
	if _, err := f.Write([]byte(persist.Magic)); err != nil {
		_ = f.Close()
		s.closeSegments()
		return nil, nil, err
	}
	s.walBytes = int64(len(persist.Magic))

	if cfg.Fsync == persist.FsyncInterval {
		s.bg.Add(1)
		go s.syncLoop()
	}

	// A fat replayed memtable (crash before flush) is flushed now so the
	// next restart's tail is small again.
	if s.memBytes >= s.cfg.MemtableBytes {
		s.mu.Lock()
		s.maybeFlushLocked()
	}
	return s, tail, nil
}

func (s *Store) closeSegments() {
	for _, seg := range s.l0 {
		seg.close()
	}
	for _, seg := range s.l1 {
		seg.close()
	}
}

// syncLoop is the FsyncInterval background flusher.
func (s *Store) syncLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for range t.C {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		var err error
		if s.degraded == nil && s.wal != nil {
			err = s.wal.Sync()
			if err != nil {
				s.latchLocked(err)
			}
		}
		s.mu.Unlock()
	}
}

// latchLocked records the first write-path failure and flips the store
// read-only. Caller holds mu.
func (s *Store) latchLocked(cause error) {
	if s.degraded != nil {
		return
	}
	s.degraded = fmt.Errorf("%w: tiered: %v", persist.ErrDegraded, cause)
	if s.cfg.OnDegrade != nil && !s.degradeFired {
		s.degradeFired = true
		go s.cfg.OnDegrade(s.degraded)
	}
}

// Degraded returns the latched failure, or nil while healthy.
func (s *Store) Degraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Put appends one record to the WAL and memtable. The value is copied.
// Once a Put returns nil under FsyncAlways the record survives a crash.
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("tiered: store closed")
	}
	if s.degraded != nil {
		err := s.degraded
		s.mu.Unlock()
		return err
	}
	frame := persist.EncodeFrame(persist.Record{Key: key, Value: value})
	if _, err := s.wal.Write(frame); err != nil {
		s.latchLocked(err)
		err = s.degraded
		s.mu.Unlock()
		return err
	}
	if s.cfg.Fsync == persist.FsyncAlways {
		if err := s.wal.Sync(); err != nil {
			s.latchLocked(err)
			err = s.degraded
			s.mu.Unlock()
			return err
		}
	}
	s.walBytes += int64(len(frame))
	val := append([]byte(nil), value...)
	if old, ok := s.mem[key]; ok {
		s.memBytes -= int64(len(key) + len(old))
	}
	s.mem[key] = val
	s.memBytes += int64(len(key) + len(val))
	if s.memBytes >= s.cfg.MemtableBytes {
		s.maybeFlushLocked()
		return nil // maybeFlushLocked released mu
	}
	s.mu.Unlock()
	return nil
}

// maybeFlushLocked freezes the memtable and flushes it to an L0
// segment. Called with mu held; always releases it. The freeze+WAL
// rotation happens under the lock (cheap); the segment write does not,
// so concurrent Puts keep landing in the fresh memtable.
func (s *Store) maybeFlushLocked() {
	if s.flushing || s.frozen != nil || len(s.mem) == 0 || s.degraded != nil {
		s.mu.Unlock()
		return
	}
	// Rotate the WAL first: frozen data = every WAL at or below the old
	// active seq, which flush retires once the segment is durable.
	newSeq := s.man.Seq
	f, err := s.cfg.FS.OpenFile(filepath.Join(s.cfg.Dir, walName(newSeq)), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		s.latchLocked(err)
		s.mu.Unlock()
		return
	}
	if _, err := f.Write([]byte(persist.Magic)); err != nil {
		_ = f.Close()
		s.latchLocked(err)
		s.mu.Unlock()
		return
	}
	s.man.Seq++
	oldWAL, oldSeq := s.wal, s.walSeq
	s.wal, s.walSeq, s.walBytes = f, newSeq, int64(len(persist.Magic))
	retire := append(append([]uint64(nil), s.oldWALs...), oldSeq)
	s.oldWALs = retire
	s.frozen = s.mem
	s.mem = make(map[string][]byte)
	s.memBytes = 0
	s.flushing = true
	segSeq := s.man.Seq
	s.man.Seq++
	s.mu.Unlock()

	// Flush durability: the frozen data is already WAL-durable, so sync
	// and close the retired WAL handle, then write the segment.
	if err := oldWAL.Sync(); err != nil {
		_ = oldWAL.Close()
		s.failFlush(err)
		return
	}
	if err := oldWAL.Close(); err != nil {
		s.failFlush(err)
		return
	}
	s.doFlush(segSeq, retire)
}

// failFlush abandons an in-progress flush: the frozen memtable stays
// readable in RAM and its WALs stay on disk, so nothing is lost — the
// store just latches degraded.
func (s *Store) failFlush(err error) {
	s.mu.Lock()
	s.flushing = false
	s.latchLocked(err)
	s.mu.Unlock()
}

// doFlush writes the frozen memtable as segment segSeq, commits it to
// the manifest, and retires the WALs it supersedes.
func (s *Store) doFlush(segSeq uint64, retire []uint64) {
	s.mu.Lock()
	frozen := s.frozen
	s.mu.Unlock()

	keys := make([]string, 0, len(frozen))
	for k := range frozen {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	w, err := newSegWriter(s.cfg.FS, s.cfg.Dir, segName(segSeq))
	if err != nil {
		s.failFlush(err)
		return
	}
	for _, k := range keys {
		if err := w.add(k, frozen[k]); err != nil {
			w.abort()
			s.failFlush(err)
			return
		}
	}
	meta, err := w.finish()
	if err != nil {
		s.failFlush(err)
		return
	}
	seg, err := openSegment(s.cfg.FS, s.cfg.Dir, meta)
	if err != nil {
		s.failFlush(err)
		return
	}

	s.mu.Lock()
	s.man.L0 = append(s.man.L0, meta)
	if err := saveManifest(s.cfg.FS, s.cfg.Dir, s.man); err != nil {
		s.man.L0 = s.man.L0[:len(s.man.L0)-1]
		s.mu.Unlock()
		seg.close()
		s.failFlush(err)
		return
	}
	s.l0 = append(s.l0, seg)
	s.frozen = nil
	s.flushing = false
	s.oldWALs = nil
	needCompact := len(s.l0) >= s.cfg.CompactTrigger ||
		(s.cfg.BudgetBytes > 0 && s.diskBytesLocked() > s.cfg.BudgetBytes)
	s.mu.Unlock()
	s.flushes.Add(1)

	// The segment now holds everything those WALs did; drop them so the
	// next restart replays only the new tail.
	for _, seq := range retire {
		_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, walName(seq)))
	}
	_ = s.cfg.FS.SyncDir(s.cfg.Dir)

	if needCompact {
		s.kickCompact()
	}
}

// Flush forces the memtable to disk (tests and shutdown hooks).
func (s *Store) Flush() error {
	s.mu.Lock()
	if len(s.mem) == 0 || s.flushing || s.frozen != nil {
		err := s.degraded
		s.mu.Unlock()
		return err
	}
	s.maybeFlushLocked()
	return s.Degraded()
}

func (s *Store) diskBytesLocked() int64 {
	var n int64
	for _, m := range s.man.L0 {
		n += m.Bytes
	}
	for _, m := range s.man.L1 {
		n += m.Bytes
	}
	return n
}

// Get looks a key up in the tier. ok=false with nil error is a clean
// miss (the caller recomputes). Read errors inside one segment are
// counted and treated as misses for that segment — the tier is a cache,
// so degrading to a recompute is always safe.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		out := append([]byte(nil), v...)
		s.mu.Unlock()
		s.diskHits.Add(1)
		return out, true, nil
	}
	if s.frozen != nil {
		if v, ok := s.frozen[key]; ok {
			out := append([]byte(nil), v...)
			s.mu.Unlock()
			s.diskHits.Add(1)
			return out, true, nil
		}
	}
	// Snapshot the segment lists; segments are immutable and their
	// ReadAt is concurrency-safe, so the scan runs outside the lock. A
	// compaction may close a snapshotted segment mid-scan; that read
	// error degrades to a miss, which the recompute path absorbs.
	l0 := append([]*segment(nil), s.l0...)
	l1 := append([]*segment(nil), s.l1...)
	s.mu.Unlock()

	for i := len(l0) - 1; i >= 0; i-- { // newest L0 first
		if v, ok := s.segGet(l0[i], key); ok {
			return v, true, nil
		}
	}
	for _, seg := range l1 {
		if v, ok := s.segGet(seg, key); ok {
			return v, true, nil
		}
	}
	s.diskMisses.Add(1)
	return nil, false, nil
}

// segGet probes one segment with counter bookkeeping. ok reports
// whether the probe found the key.
func (s *Store) segGet(seg *segment, key string) ([]byte, bool) {
	v, ok, bloomNeg, err := seg.get(key)
	if err != nil {
		s.corruptions.Add(1)
		return nil, false
	}
	if bloomNeg {
		s.bloomNegs.Add(1)
	}
	if ok {
		s.diskHits.Add(1)
		return v, true
	}
	return nil, false
}

// kickCompact starts a background compaction unless one is running.
func (s *Store) kickCompact() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer s.compacting.Store(false)
		s.compact()
	}()
}

// Compact runs one compaction synchronously (tests, admin hooks).
func (s *Store) Compact() error {
	if !s.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer s.compacting.Store(false)
	return s.compact()
}

// compact merges every L0 segment and the current L1 run into a fresh
// L1, newest value winning per key, then atomically swaps the manifest.
// Invariants: inputs are only removed after the new manifest (listing
// the outputs) is durable; the output run is non-overlapping and sorted;
// a compaction never runs while degraded (the latch is read-only mode).
//
// Budget: if the inputs exceed BudgetBytes, whole oldest-generation
// segments are dropped before merging — L1 first (its data is by
// construction older than any L0), then oldest L0s. Eviction is coarse
// (segment granularity) and recency is write-recency, not read-recency;
// a dropped key is simply recomputed on next touch.
func (s *Store) compact() error {
	s.mu.Lock()
	if s.closed || s.degraded != nil || len(s.l0) == 0 {
		s.mu.Unlock()
		return nil
	}
	inL0 := append([]*segment(nil), s.l0...)
	inL1 := append([]*segment(nil), s.l1...)
	s.mu.Unlock()

	// Budget pre-selection: drop oldest data until inputs fit.
	var total int64
	for _, seg := range inL0 {
		total += seg.meta.Bytes
	}
	for _, seg := range inL1 {
		total += seg.meta.Bytes
	}
	dropped := make(map[*segment]bool)
	if s.cfg.BudgetBytes > 0 {
		for _, seg := range inL1 { // L1 holds the oldest generation
			if total <= s.cfg.BudgetBytes {
				break
			}
			dropped[seg] = true
			total -= seg.meta.Bytes
			s.evictions.Add(1)
		}
		for _, seg := range inL0 { // then oldest L0 first
			if total <= s.cfg.BudgetBytes {
				break
			}
			dropped[seg] = true
			total -= seg.meta.Bytes
			s.evictions.Add(1)
		}
	}

	// Merge sources: higher priority wins a key tie. L0 priority grows
	// with position (newer flush = newer data); all of L1 sits below L0.
	type source struct {
		it   *segIter
		cur  entry
		ok   bool
		prio int
	}
	var srcs []*source
	prio := 0
	for _, seg := range inL1 {
		if !dropped[seg] {
			srcs = append(srcs, &source{it: seg.iter(), prio: prio})
		}
	}
	for _, seg := range inL0 {
		prio++
		if !dropped[seg] {
			srcs = append(srcs, &source{it: seg.iter(), prio: prio})
		}
	}
	advance := func(src *source) error {
		e, ok, err := src.it.next()
		if err != nil {
			// A corrupt block inside an input: skip the rest of that
			// input (its keys recompute on demand) rather than aborting
			// the whole compaction.
			s.corruptions.Add(1)
			src.ok = false
			return nil
		}
		src.cur, src.ok = e, ok
		return nil
	}
	for _, src := range srcs {
		_ = advance(src)
	}

	// Output: a run of ~4 MiB segments.
	const outTarget = 4 << 20
	var (
		outMetas []SegmentMeta
		w        *segWriter
		werr     error
	)
	// Sequence numbers come from the shared manifest counter under the
	// lock: a flush may allocate concurrently, and names must not collide.
	allocSeq := func() uint64 {
		s.mu.Lock()
		n := s.man.Seq
		s.man.Seq++
		s.mu.Unlock()
		return n
	}
	emit := func(key string, value []byte) error {
		if w == nil {
			var err error
			w, err = newSegWriter(s.cfg.FS, s.cfg.Dir, segName(allocSeq()))
			if err != nil {
				return err
			}
		}
		if err := w.add(key, value); err != nil {
			return err
		}
		if w.bytesBuffered() >= outTarget {
			meta, err := w.finish()
			w = nil
			if err != nil {
				return err
			}
			outMetas = append(outMetas, meta)
		}
		return nil
	}
	for werr == nil {
		// Pick the smallest live key; highest priority wins ties.
		var best *source
		for _, src := range srcs {
			if !src.ok {
				continue
			}
			if best == nil || src.cur.key < best.cur.key ||
				(src.cur.key == best.cur.key && src.prio > best.prio) {
				best = src
			}
		}
		if best == nil {
			break
		}
		key := best.cur.key
		werr = emit(key, best.cur.value)
		// Consume this key from every source.
		for _, src := range srcs {
			for src.ok && src.cur.key == key {
				_ = advance(src)
			}
		}
	}
	if werr == nil && w != nil {
		meta, err := w.finish()
		w = nil
		werr = err
		if err == nil {
			outMetas = append(outMetas, meta)
		}
	}
	if werr != nil {
		if w != nil {
			w.abort()
		}
		for _, m := range outMetas {
			_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, m.Name))
		}
		s.mu.Lock()
		s.latchLocked(werr)
		s.mu.Unlock()
		return werr
	}

	outSegs := make([]*segment, 0, len(outMetas))
	for _, m := range outMetas {
		seg, err := openSegment(s.cfg.FS, s.cfg.Dir, m)
		if err != nil {
			for _, o := range outSegs {
				o.close()
			}
			for _, om := range outMetas {
				_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, om.Name))
			}
			s.mu.Lock()
			s.latchLocked(err)
			s.mu.Unlock()
			return err
		}
		outSegs = append(outSegs, seg)
	}

	// Commit: new manifest keeps any L0 flushed while we merged.
	consumed := make(map[string]bool, len(inL0)+len(inL1))
	for _, seg := range inL0 {
		consumed[seg.meta.Name] = true
	}
	for _, seg := range inL1 {
		consumed[seg.meta.Name] = true
	}
	s.mu.Lock()
	var keepMeta []SegmentMeta
	var keepSegs []*segment
	for i, m := range s.man.L0 {
		if !consumed[m.Name] {
			keepMeta = append(keepMeta, m)
			keepSegs = append(keepSegs, s.l0[i])
		}
	}
	oldMan := *s.man
	s.man.L0 = keepMeta
	s.man.L1 = outMetas
	if err := saveManifest(s.cfg.FS, s.cfg.Dir, s.man); err != nil {
		*s.man = oldMan
		s.latchLocked(err)
		s.mu.Unlock()
		for _, o := range outSegs {
			o.close()
		}
		for _, m := range outMetas {
			_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, m.Name))
		}
		return err
	}
	s.l0 = keepSegs
	s.l1 = outSegs
	s.mu.Unlock()
	s.compactions.Add(1)

	// Inputs are superseded by the committed manifest: close and remove.
	for _, seg := range inL0 {
		seg.close()
		_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, seg.meta.Name))
	}
	for _, seg := range inL1 {
		seg.close()
		_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, seg.meta.Name))
	}
	_ = s.cfg.FS.SyncDir(s.cfg.Dir)
	return nil
}

// Scrub re-reads every segment block and verifies its checksum, calling
// throttle(bytes) between blocks so the caller can rate-limit. A
// segment that fails is quarantined: dropped from the manifest and
// deleted, its keys left to recompute or anti-entropy healing. Returns
// segments scanned and segments quarantined.
func (s *Store) Scrub(throttle func(int)) (scanned, quarantined int, err error) {
	s.mu.Lock()
	segs := append(append([]*segment(nil), s.l0...), s.l1...)
	s.mu.Unlock()
	for _, seg := range segs {
		scanned++
		if serr := seg.scrub(throttle); serr != nil {
			s.corruptions.Add(1)
			if s.quarantine(seg) {
				quarantined++
			}
		}
	}
	return scanned, quarantined, nil
}

// quarantine drops one segment from the manifest and deletes its file.
// Reports false if the segment was already gone (e.g. compacted away
// while the scrub read it).
func (s *Store) quarantine(sick *segment) bool {
	s.mu.Lock()
	found := false
	for i, seg := range s.l0 {
		if seg == sick {
			s.l0 = append(s.l0[:i:i], s.l0[i+1:]...)
			s.man.L0 = append(s.man.L0[:i:i], s.man.L0[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		for i, seg := range s.l1 {
			if seg == sick {
				s.l1 = append(s.l1[:i:i], s.l1[i+1:]...)
				s.man.L1 = append(s.man.L1[:i:i], s.man.L1[i+1:]...)
				found = true
				break
			}
		}
	}
	if !found {
		s.mu.Unlock()
		return false
	}
	if err := saveManifest(s.cfg.FS, s.cfg.Dir, s.man); err != nil {
		s.latchLocked(err)
	}
	s.mu.Unlock()
	sick.close()
	_ = s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, sick.meta.Name))
	s.quarantined.Add(1)
	return true
}

// ForEach visits every live key newest-value-first exactly once, in no
// particular key order: memtable, frozen memtable, L0 newest-first,
// then L1. Used by keyspace transfer to stream keys the RAM tier has
// long evicted. The value slice is owned by the callback.
func (s *Store) ForEach(fn func(key string, value []byte) error) error {
	s.mu.Lock()
	memKeys := make([]entry, 0, len(s.mem))
	for k, v := range s.mem {
		memKeys = append(memKeys, entry{k, append([]byte(nil), v...)})
	}
	if s.frozen != nil {
		for k, v := range s.frozen {
			memKeys = append(memKeys, entry{k, append([]byte(nil), v...)})
		}
	}
	l0 := append([]*segment(nil), s.l0...)
	l1 := append([]*segment(nil), s.l1...)
	s.mu.Unlock()

	seen := make(map[string]bool, len(memKeys))
	for _, e := range memKeys {
		if seen[e.key] {
			continue
		}
		seen[e.key] = true
		if err := fn(e.key, e.value); err != nil {
			return err
		}
	}
	scan := func(seg *segment) error {
		it := seg.iter()
		for {
			e, ok, err := it.next()
			if err != nil {
				s.corruptions.Add(1)
				return nil // skip the sick remainder; scrub will handle it
			}
			if !ok {
				return nil
			}
			if seen[e.key] {
				continue
			}
			seen[e.key] = true
			if err := fn(e.key, e.value); err != nil {
				return err
			}
		}
	}
	for i := len(l0) - 1; i >= 0; i-- {
		if err := scan(l0[i]); err != nil {
			return err
		}
	}
	for _, seg := range l1 {
		if err := scan(seg); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots the tier's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Segments: int64(len(s.l0) + len(s.l1)),
		Bytes:    s.diskBytesLocked(),
		WALBytes: s.walBytes,
		Keys:     int64(len(s.mem)),
	}
	if s.frozen != nil {
		st.Keys += int64(len(s.frozen))
	}
	for _, m := range s.man.L0 {
		st.Keys += m.Count
	}
	for _, m := range s.man.L1 {
		st.Keys += m.Count
	}
	s.mu.Unlock()
	st.DiskHits = s.diskHits.Load()
	st.DiskMisses = s.diskMisses.Load()
	st.BloomNegatives = s.bloomNegs.Load()
	st.Flushes = s.flushes.Load()
	st.Compactions = s.compactions.Load()
	st.Evictions = s.evictions.Load()
	st.Corruptions = s.corruptions.Load()
	st.Quarantined = s.quarantined.Load()
	return st
}

// Close syncs the WAL tail, waits for background work, and releases
// every file handle. The memtable is NOT flushed: the WAL replays it on
// the next Open, which is exactly the O(tail) restart contract.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.wal != nil && s.degraded == nil {
		if serr := s.wal.Sync(); serr != nil {
			err = serr
		}
	}
	s.mu.Unlock()
	s.bg.Wait()
	s.mu.Lock()
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.wal = nil
	}
	s.closeSegments()
	s.l0, s.l1 = nil, nil
	s.mu.Unlock()
	return err
}
