// Command benchjson runs the repository's benchmark suite and writes the
// results as JSON, one object per benchmark, including Go's standard
// measurements (ns/op, B/op, allocs/op) and the custom paper metrics the
// benchmarks report (makespan, blocks, hop-weight, ...).
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-count 1] [-o BENCH_1.json]
//
// The output file holds a single JSON document in the shared
// internal/benchparse schema:
//
//	{
//	  "go": "go1.22.x",
//	  "benchmarks": [
//	    {"name": "BenchmarkVertexIndex/dense-8", "runs": 13824,
//	     "metrics": {"ns/op": 123456, "lookups/op": 27648}},
//	    ...
//	  ]
//	}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"repro/internal/benchparse"
)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test")
		benchtime = flag.String("benchtime", "1x", "benchtime passed to go test")
		count     = flag.Int("count", 1, "count passed to go test")
		out       = flag.String("o", "BENCH_1.json", "output file")
		pkg       = flag.String("pkg", ".", "package to benchmark")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), "-benchmem", *pkg)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail(err)
	}
	if err := cmd.Start(); err != nil {
		fail(err)
	}

	doc := benchparse.New()
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := benchparse.ParseLine(line); ok {
			doc.Add(r)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if err := cmd.Wait(); err != nil {
		fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark lines matched %q", *bench))
	}

	if err := doc.WriteFile(*out); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
