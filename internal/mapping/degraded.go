// Degraded-mode remapping: when hypercube nodes or links fail, a mapped
// plan migrates the dead nodes' blocks to nearby survivors and reroutes
// traffic over the surviving subcube. This is exactly the structure the
// paper's Algorithm 2 pays for — Gray-code placement keeps communicating
// blocks on adjacent nodes, so a crashed node almost always has a healthy
// physical neighbour to take its blocks with one extra hop.
package mapping

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hypercube"
)

// ErrDegraded wraps every failure to build a degraded mapping (all nodes
// failed, surviving cube partitioned, addresses out of range), so callers
// can classify it as a caller error.
var ErrDegraded = errors.New("mapping: degraded remap failed")

// maxDegradedDim bounds the cube dimension Degrade will build routing
// tables for: all-pairs BFS over the surviving graph stores two int32
// tables of N², so dim 10 (1024 nodes) costs 8 MB and dim 15 would cost
// 8 GB.
const maxDegradedDim = 10

// DegradationStats quantifies what the failures cost.
type DegradationStats struct {
	// FailedNodes are the dead nodes, sorted ascending.
	FailedNodes []int
	// FailedLinks is the count of distinct failed links (node failures not
	// included).
	FailedLinks int
	// MigratedBlocks counts blocks moved off dead nodes.
	MigratedBlocks int
	// MaxMigrationHops is the largest surviving-graph distance any block
	// migrated (1 when every dead node had a healthy physical neighbour —
	// the Gray-code adjacency case).
	MaxMigrationHops int
	// HopWeightBefore and HopWeightAfter are the TIG's total
	// weight×distance traffic under the original mapping (fault-free
	// distances) and under the degraded mapping (surviving-graph
	// distances).
	HopWeightBefore, HopWeightAfter int64
	// ExtraHopWords is HopWeightAfter − HopWeightBefore: the additional
	// word-hops the failures force onto the network. It can be negative —
	// migrating a dead node's blocks onto an adjacent survivor makes
	// their mutual edges local — even though the concentrated load always
	// inflates the makespan.
	ExtraHopWords int64
	// MakespanInflation is degraded/baseline makespan; zero until a caller
	// that simulates both fills it in (loopmap.Plan.RemapDegraded does).
	// Usually ≥ 1, but consolidation can push it below 1 when
	// communication dominates: co-located blocks stop paying t_start for
	// their mutual traffic, which under the paper's send-occupies-sender
	// model can outweigh the lost parallelism.
	MakespanInflation float64
}

// Degraded is a mapping over a hypercube with failed nodes and links:
// block placement avoiding dead nodes, plus shortest-path distances and
// routes over the surviving graph.
type Degraded struct {
	// Base is the intact mapping this degradation started from.
	Base *Result
	// Cube is the (intact) address space; failed elements are overlaid.
	Cube hypercube.Cube
	// NodeOf[blockID] is the block's node after migration; never a failed
	// node.
	NodeOf []int
	// TakenBy[node] is the survivor that adopted the node's blocks, or -1
	// for nodes that did not fail (or hosted no blocks).
	TakenBy []int
	// Failed[node] reports node death.
	Failed []bool

	// dist and next are all-pairs shortest-path tables over the surviving
	// graph (failed nodes excluded, failed links excluded); -1 marks
	// unreachable or failed entries.
	dist [][]int32
	next [][]int32
}

// Degrade builds a degraded mapping: blocks of failed nodes migrate to
// the nearest healthy node over the surviving subcube (a Gray-code
// physical neighbour when one survives; ties break to the lowest
// address), and Hops/Route reroute every message around the failures. The
// TIG t sizes the before/after traffic stats; it may be nil when only the
// placement is wanted.
func Degrade(base *Result, t *core.TIG, failedNodes []int, failedLinks [][2]int) (*Degraded, *DegradationStats, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("%w: no base mapping", ErrDegraded)
	}
	cube := base.Cube
	if cube.Dim > maxDegradedDim {
		return nil, nil, fmt.Errorf("%w: cube dimension %d exceeds the degraded-routing maximum %d (the all-pairs tables would need %d² entries)",
			ErrDegraded, cube.Dim, maxDegradedDim, cube.N)
	}
	failed := make([]bool, cube.N)
	for _, n := range failedNodes {
		if n < 0 || n >= cube.N {
			return nil, nil, fmt.Errorf("%w: failed node %d outside the %d-node cube", ErrDegraded, n, cube.N)
		}
		failed[n] = true
	}
	sortedFailed := make([]int, 0, len(failedNodes))
	for n, f := range failed {
		if f {
			sortedFailed = append(sortedFailed, n)
		}
	}
	if len(sortedFailed) == cube.N {
		return nil, nil, fmt.Errorf("%w: all %d nodes failed", ErrDegraded, cube.N)
	}

	// linkDown holds failed links (normalized), independent of node death.
	linkDown := make(map[[2]int]bool, len(failedLinks))
	for _, l := range failedLinks {
		a, b := l[0], l[1]
		if a < 0 || b < 0 || a >= cube.N || b >= cube.N {
			return nil, nil, fmt.Errorf("%w: failed link (%d, %d) outside the %d-node cube", ErrDegraded, a, b, cube.N)
		}
		if a == b {
			return nil, nil, fmt.Errorf("%w: failed link (%d, %d) is not a link", ErrDegraded, a, b)
		}
		if cube.Distance(a, b) != 1 {
			return nil, nil, fmt.Errorf("%w: (%d, %d) is not a hypercube link (addresses differ in %d bits)", ErrDegraded, a, b, cube.Distance(a, b))
		}
		if a > b {
			a, b = b, a
		}
		linkDown[[2]int{a, b}] = true
	}
	linkUp := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		return !linkDown[[2]int{a, b}]
	}

	d := &Degraded{
		Base:    base,
		Cube:    cube,
		NodeOf:  append([]int(nil), base.NodeOf...),
		TakenBy: make([]int, cube.N),
		Failed:  failed,
	}
	for i := range d.TakenBy {
		d.TakenBy[i] = -1
	}

	// All-pairs BFS over the surviving graph: healthy endpoints, healthy
	// intermediates, un-failed links. next[s][v] is the first hop from s
	// toward v, so Route reconstructs paths without storing them.
	d.dist = make([][]int32, cube.N)
	d.next = make([][]int32, cube.N)
	queue := make([]int32, 0, cube.N)
	for s := 0; s < cube.N; s++ {
		ds := make([]int32, cube.N)
		ns := make([]int32, cube.N)
		for i := range ds {
			ds[i], ns[i] = -1, -1
		}
		d.dist[s], d.next[s] = ds, ns
		if failed[s] {
			continue
		}
		ds[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for bit := 0; bit < cube.Dim; bit++ {
				v := u ^ (1 << uint(bit))
				if failed[v] || ds[v] >= 0 || !linkUp(u, v) {
					continue
				}
				ds[v] = ds[u] + 1
				if u == s {
					ns[v] = int32(v)
				} else {
					ns[v] = ns[u]
				}
				queue = append(queue, int32(v))
			}
		}
	}

	stats := &DegradationStats{FailedNodes: sortedFailed, FailedLinks: len(linkDown)}

	// Migrate each dead node's blocks to its nearest survivor. The dead
	// node's own un-failed links are usable for this one-shot state
	// transfer, so takeover distance is a BFS from the dead node whose
	// interior vertices are healthy; Hamming distance breaks the (rare)
	// case of a dead node with every incident link down.
	takeoverDist := make([]int32, cube.N)
	for _, dead := range sortedFailed {
		if len(base.Clusters) > dead && len(base.Clusters[dead]) == 0 {
			continue
		}
		for i := range takeoverDist {
			takeoverDist[i] = -1
		}
		takeoverDist[dead] = 0
		queue = append(queue[:0], int32(dead))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			if u != dead && failed[u] {
				continue // dead relay: reachable but cannot forward
			}
			for bit := 0; bit < cube.Dim; bit++ {
				v := u ^ (1 << uint(bit))
				if takeoverDist[v] >= 0 || !linkUp(u, v) {
					continue
				}
				takeoverDist[v] = takeoverDist[u] + 1
				queue = append(queue, int32(v))
			}
		}
		best, bestDist := -1, int32(1<<30)
		for v := 0; v < cube.N; v++ {
			if failed[v] || takeoverDist[v] < 0 {
				continue
			}
			if takeoverDist[v] < bestDist {
				best, bestDist = v, takeoverDist[v]
			}
		}
		if best < 0 {
			// Every incident link is down: fall back to the Hamming-nearest
			// survivor (state restored from the checkpoint store, not over
			// the dead node's links).
			for v := 0; v < cube.N; v++ {
				if failed[v] {
					continue
				}
				if hd := int32(cube.Distance(dead, v)); best < 0 || hd < bestDist {
					best, bestDist = v, hd
				}
			}
		}
		d.TakenBy[dead] = best
		migrated := 0
		for b, n := range d.NodeOf {
			if n == dead {
				d.NodeOf[b] = best
				migrated++
			}
		}
		stats.MigratedBlocks += migrated
		if migrated > 0 && int(bestDist) > stats.MaxMigrationHops {
			stats.MaxMigrationHops = int(bestDist)
		}
	}

	// Every pair of block-hosting nodes must stay mutually reachable: a
	// surviving graph that separates communicating hosts cannot carry the
	// dataflow. Healthy nodes hosting nothing may be stranded harmlessly.
	hosts := make([]int, 0, cube.N)
	hosting := make([]bool, cube.N)
	for _, n := range d.NodeOf {
		if n >= 0 && !hosting[n] {
			hosting[n] = true
			hosts = append(hosts, n)
		}
	}
	for _, u := range hosts {
		for _, v := range hosts {
			if d.dist[u][v] < 0 {
				return nil, nil, fmt.Errorf("%w: surviving cube is partitioned (no route between block hosts %d and %d)", ErrDegraded, u, v)
			}
		}
	}

	if t != nil {
		stats.HopWeightBefore = EvaluateGeneral(t, base.NodeOf, cube.N, cube.Distance).HopWeight
		stats.HopWeightAfter = EvaluateGeneral(t, d.NodeOf, cube.N, d.Hops).HopWeight
		stats.ExtraHopWords = stats.HopWeightAfter - stats.HopWeightBefore
	}
	return d, stats, nil
}

// Hops returns the surviving-graph shortest-path length between two
// healthy nodes. It panics on a failed or unreachable endpoint — the
// degraded placement guarantees no block sits on one.
func (d *Degraded) Hops(a, b int) int {
	h := d.dist[a][b]
	if h < 0 {
		panic(fmt.Sprintf("mapping: no degraded route from %d to %d", a, b))
	}
	return int(h)
}

// Route returns a shortest surviving-graph path from src to dst,
// inclusive of both endpoints.
func (d *Degraded) Route(src, dst int) []int {
	if d.dist[src][dst] < 0 {
		panic(fmt.Sprintf("mapping: no degraded route from %d to %d", src, dst))
	}
	path := []int{src}
	for cur := src; cur != dst; {
		cur = int(d.next[cur][dst])
		path = append(path, cur)
	}
	return path
}

// Evaluate computes mapping statistics of a TIG under the degraded
// placement and surviving-graph distances.
func (d *Degraded) Evaluate(t *core.TIG) Stats {
	return EvaluateGeneral(t, d.NodeOf, d.Cube.N, d.Hops)
}

// SortFailed normalizes a failed-node list: sorted, deduplicated.
func SortFailed(nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Ints(out)
	j := 0
	for i, n := range out {
		if i == 0 || n != out[j-1] {
			out[j] = n
			j++
		}
	}
	return out[:j]
}
