package serve

import (
	"bufio"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startHTTPServer runs a hardened listener for h on an ephemeral port.
func startHTTPServer(t *testing.T, h http.Handler, timeouts ServerTimeouts) (*http.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer(h, timeouts)
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return hs, "http://" + ln.Addr().String()
}

// TestSlowHeaderConnectionDropped: a client that dribbles headers slower
// than ReadHeaderTimeout is cut off — the slowloris guard the daemon's
// listener previously lacked.
func TestSlowHeaderConnectionDropped(t *testing.T) {
	s := New(Config{})
	_, base := startHTTPServer(t, s.Handler(), ServerTimeouts{ReadHeader: 100 * time.Millisecond})

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow")); err != nil {
		t.Fatal(err)
	}
	// Stall past the header deadline without finishing the headers. A
	// hardened server cuts us off (EOF or an error response followed by
	// close) within the 100ms header timeout; an unhardened one would pin
	// the connection until our own 5s deadline.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = io.Copy(io.Discard, conn)
	if err != nil && !strings.Contains(err.Error(), "reset") {
		t.Fatalf("expected the server to drop the connection, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow-header connection lived %v, want it dropped near the 100ms header timeout", elapsed)
	}

	// The server itself must remain healthy for well-behaved clients.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after slowloris attempt: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after slowloris attempt", resp.StatusCode)
	}
}

// gateHandler lets the drain test hold requests in flight deterministically:
// requests to gated paths park between "entered" and "release", then fall
// through to the real handler.
type gateHandler struct {
	inner   http.Handler
	entered *sync.WaitGroup
	release chan struct{}
}

func (g *gateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		g.entered.Done()
		<-g.release
	}
	g.inner.ServeHTTP(w, r)
}

// TestGracefulDrainUnderLoad is the SIGTERM shutdown contract, asserted
// with concurrent in-flight clients: once draining starts, /readyz turns
// 503 while every request already in flight completes with 200, and
// Shutdown returns only after they have.
func TestGracefulDrainUnderLoad(t *testing.T) {
	const clients = 8
	s := New(Config{})
	var entered sync.WaitGroup
	entered.Add(clients)
	gate := &gateHandler{inner: s.Handler(), entered: &entered, release: make(chan struct{})}
	hs, base := startHTTPServer(t, gate, ServerTimeouts{})

	// Launch in-flight load and wait until every request is inside a
	// handler.
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/plan", "application/json",
				strings.NewReader(`{"kernel": "l1", "size": 8, "cube_dim": 3}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	entered.Wait()

	// Begin the drain exactly as the daemon's SIGTERM path does: /readyz
	// flips to 503 first (so load balancers stop routing while in-flight
	// work continues), and only then does the listener shut down.
	s.SetDraining()
	readyStatus := func() string {
		conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
		if err != nil {
			return "dial failed (listener closed)"
		}
		defer conn.Close()
		conn.Write([]byte("GET /readyz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"))
		line, _ := bufio.NewReader(conn).ReadString('\n')
		return line
	}
	if line := readyStatus(); !strings.Contains(line, "503") {
		t.Errorf("/readyz during drain: %q, want 503", line)
	}

	shutdownDone := make(chan error, 1)
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownDone <- hs.Shutdown(shutCtx) }()

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before in-flight requests finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the parked requests: they must all complete 200.
	close(gate.release)
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusOK {
			t.Errorf("in-flight client %d finished with %d during drain", i, code)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
}
