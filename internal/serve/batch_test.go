package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func postBatch(t *testing.T, url string, req BatchRequest) (*http.Response, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, url+"/v1/batch", string(body))
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(out, &br); err != nil {
			t.Fatalf("decode batch envelope: %v: %s", err, out)
		}
	}
	return resp, br
}

func planItem(body string) BatchItem {
	var pr PlanRequest
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		panic(err)
	}
	return BatchItem{Plan: &pr}
}

func TestBatchMixedPlanSimulate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	three := 3
	req := BatchRequest{Items: []BatchItem{
		planItem(`{"kernel": "l1", "size": 8, "cube_dim": 3}`),
		{Simulate: &SimulateRequest{
			PlanRequest: PlanRequest{Kernel: "l1", Size: 8, CubeDim: &three},
			Sequential:  true,
		}},
		planItem(`{"kernel": "matmul", "size": 6, "cube_dim": 2}`),
	}}
	resp, br := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	for i, res := range br.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, res.Status, res.Error)
		}
	}
	var pr PlanResponse
	if err := json.Unmarshal(br.Results[0].Body, &pr); err != nil {
		t.Fatalf("item 0 body: %v: %s", err, br.Results[0].Body)
	}
	if pr.Blocks != 9 || pr.Procs != 8 {
		t.Fatalf("item 0: blocks=%d procs=%d, want 9 and 8", pr.Blocks, pr.Procs)
	}
	if br.Results[0].ETag == "" {
		t.Fatal("plan item carries no ETag")
	}
	var sr SimulateResponse
	if err := json.Unmarshal(br.Results[1].Body, &sr); err != nil {
		t.Fatalf("item 1 body: %v: %s", err, br.Results[1].Body)
	}
	if sr.Makespan <= 0 || sr.Speedup <= 0 {
		t.Fatalf("simulate item: makespan=%g speedup=%g", sr.Makespan, sr.Speedup)
	}
	if br.Results[1].ETag != "" {
		t.Fatal("simulate item unexpectedly carries an ETag")
	}

	m := s.Metrics()
	if m.BatchItems != 3 {
		t.Fatalf("batch_items = %d, want 3", m.BatchItems)
	}
	if m.BatchSize.Count != 1 {
		t.Fatalf("batch_size count = %d, want 1", m.BatchSize.Count)
	}
}

// Per-item failures never fail siblings: the envelope is 200, the bad
// items carry their own statuses, and the good items are served.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	pr := PlanRequest{Kernel: "l1", Size: 8}
	req := BatchRequest{Items: []BatchItem{
		planItem(`{"kernel": "l1", "size": 8, "cube_dim": 3}`),
		planItem(`{"kernel": "no-such-kernel", "size": 8, "cube_dim": 3}`),
		planItem(`{"kernel": "l1", "size": 9999, "cube_dim": 3}`),
		{}, // neither plan nor simulate
		{Plan: &pr, Simulate: &SimulateRequest{}}, // both
	}}
	resp, br := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 despite bad items", resp.StatusCode)
	}
	if br.Results[0].Status != http.StatusOK {
		t.Fatalf("good item: status %d (%s)", br.Results[0].Status, br.Results[0].Error)
	}
	for i := 1; i < 5; i++ {
		if br.Results[i].Status != http.StatusBadRequest {
			t.Fatalf("bad item %d: status %d, want 400 (%s)", i, br.Results[i].Status, br.Results[i].Error)
		}
		if br.Results[i].Error == "" {
			t.Fatalf("bad item %d carries no error message", i)
		}
		if len(br.Results[i].Body) != 0 {
			t.Fatalf("bad item %d carries a body: %s", i, br.Results[i].Body)
		}
	}
}

// Duplicate canonical keys in one batch compute the base plan exactly
// once — they collapse into one group and share the cache line.
func TestBatchDupKeysComputeOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var items []BatchItem
	for i := 0; i < 16; i++ {
		// Same canonical key throughout; half vary the cube so the encoded
		// frames differ while the base plan is still shared.
		items = append(items, planItem(fmt.Sprintf(`{"kernel": "l1", "size": 8, "cube_dim": %d}`, 2+i%2)))
	}
	resp, br := postBatch(t, ts.URL, BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	for i, res := range br.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, res.Status, res.Error)
		}
	}
	if m := s.Metrics(); m.PlanComputations != 1 {
		t.Fatalf("computations = %d, want 1 for 16 duplicate-key items", m.PlanComputations)
	}
}

// A batched plan item's body is byte-identical to the single-request
// response for the same request, modulo the trailing newline the single
// response's encoder appends.
func TestBatchByteIdenticalToSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"kernel": "matmul", "size": 8, "cube_dim": 3}`

	resp, br := postBatch(t, ts.URL, BatchRequest{Items: []BatchItem{planItem(body)}})
	if resp.StatusCode != http.StatusOK || br.Results[0].Status != http.StatusOK {
		t.Fatalf("batch failed: %d / %+v", resp.StatusCode, br.Results[0])
	}

	// A fresh server serves the same request as a single call; both are
	// first computations, so even the cache outcome agrees.
	_, ts2 := newTestServer(t, Config{})
	hresp, single := postJSON(t, ts2.URL+"/v1/plan", body)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("single status = %d", hresp.StatusCode)
	}
	if want := bytes.TrimSuffix(single, []byte("\n")); !bytes.Equal(br.Results[0].Body, want) {
		t.Fatalf("batch body differs from single response:\n%s\nvs\n%s", br.Results[0].Body, want)
	}
	if hresp.Header.Get("ETag") != br.Results[0].ETag {
		t.Fatalf("batch ETag %q != single ETag %q", br.Results[0].ETag, hresp.Header.Get("ETag"))
	}
}

// The hand-rolled envelope encoder must be indistinguishable from
// encoding/json marshaling the same BatchResponse.
func TestBatchEnvelopeEncoding(t *testing.T) {
	results := []BatchItemResult{
		{Status: 200, ETag: `"p00deadbeef00"`, Body: json.RawMessage(`{"kernel":"l1","blocks":9}`)},
		{Status: 400, Error: `serve: size 9999 out of range [1, 128]`},
		{Status: 200, Body: json.RawMessage(`{"makespan":12.5}`)},
		{Status: 503, Error: "quoted \"error\" with\nnewline"},
	}
	var buf bytes.Buffer
	encodeBatchResponse(&buf, results)
	want, err := json.Marshal(BatchResponse{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("hand-rolled envelope differs:\n%s\nvs\n%s", buf.Bytes(), want)
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 4})
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", `{"items": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	var items []BatchItem
	for i := 0; i < 5; i++ {
		items = append(items, planItem(`{"kernel": "l1", "size": 8, "cube_dim": 3}`))
	}
	if resp, _ := postBatch(t, ts.URL, BatchRequest{Items: items}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", resp.StatusCode)
	}
}

// Many distinct keys fan out across workers; run under -race this is the
// batch path's concurrency check.
func TestBatchDistinctKeysParallel(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var items []BatchItem
	for size := 4; size < 16; size++ {
		items = append(items, planItem(fmt.Sprintf(`{"kernel": "l1", "size": %d, "cube_dim": 3}`, size)))
	}
	resp, br := postBatch(t, ts.URL, BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	for i, res := range br.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, res.Status, res.Error)
		}
	}
	if m := s.Metrics(); m.PlanComputations != int64(len(items)) {
		t.Fatalf("computations = %d, want %d", m.PlanComputations, len(items))
	}
}
