// Matvec reproduces the paper's §IV performance analysis: matrix–vector
// multiplication (loops L4/L5) partitioned with Algorithm 1, mapped onto
// hypercubes of growing dimension, and timed with the
// t_calc/t_start/t_comm cost model — including the exact Table I and the
// machine-size-invariance of the communication term.
//
// Run with: go run ./examples/matvec
package main

import (
	"fmt"
	"log"
	"os"

	loopmap "repro"
	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	// --- Table I, symbolically, at the paper's size M = 1024 ---
	fmt.Println("Table I (M = 1024), exactly as the paper prints it:")
	for _, row := range analysis.TableI(1024, analysis.PaperTableISizes) {
		fmt.Println(" ", row)
	}

	// --- The same pipeline measured end to end at a laptop size ---
	const m = 128
	params := machine.Era1991()
	fmt.Printf("\nmeasured pipeline at M = %d (t_calc=%v t_start=%v t_comm=%v):\n",
		m, params.TCalc, params.TStart, params.TComm)
	tb := report.NewTable("N", "blocks/proc", "critical ops", "analytic 2W", "makespan", "speedup")
	var seqMakespan float64
	for _, dim := range []int{0, 1, 2, 3, 4} {
		plan, err := loopmap.NewPlan(loopmap.NewKernel("matvec", m), loopmap.PlanOptions{CubeDim: dim})
		if err != nil {
			log.Fatal(err)
		}
		s, err := plan.Simulate(params, loopmap.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		n := int64(plan.Procs())
		if dim == 0 {
			seqMakespan = s.Makespan
		}
		// The kernel encodes 3 abstract ops per point (1 for the x pipe,
		// 2 for the multiply-add); the paper's 2W counts only the flops.
		tb.AddRow(n, plan.Partitioning.NumBlocks()/int(n), s.MaxProcOps,
			analysis.MatVecCalcOps(m, n)/2*3, s.Makespan, seqMakespan/s.Makespan)
	}
	tb.Render(os.Stdout)

	// --- The grain-size claim ---
	fmt.Println("\ncomm/comp ratio of the critical processor falls with problem size (N = 16):")
	var labels []string
	var vals []float64
	for _, mm := range []int64{64, 256, 1024, 4096} {
		labels = append(labels, fmt.Sprintf("M=%d", mm))
		vals = append(vals, analysis.CommCompRatio(mm, 16, params))
	}
	fmt.Print(report.Histogram(labels, vals, 40))

	// --- Numerical verification of the parallel execution ---
	plan, err := loopmap.NewPlan(loopmap.NewKernel("matvec", 32), loopmap.PlanOptions{CubeDim: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ny = A·x computed on 8 goroutine-processors matches the sequential reference")
}
