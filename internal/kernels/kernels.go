// Package kernels provides the nested-loop kernels used throughout the
// paper — loop L1 (Example 1), matrix multiplication (Example 2),
// matrix–vector multiplication (L4/L5) — plus additional classics
// (convolution, 1-D stencil over time, uniformized transitive closure, a
// discrete cosine transform) in the uniform single-assignment form the
// partitioning method requires.
//
// Each kernel couples the structural description (nest, dependence matrix,
// recommended time function) with executable systolic semantics: every
// index point consumes one value per dependence vector from its
// predecessors (or a boundary input when the predecessor falls outside the
// index set) and produces one value per dependence vector for its
// successors. This is exactly the dataflow of the rewritten loops in the
// paper, and it lets the concurrent executor verify real computations
// against a sequential reference.
package kernels

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/loop"
	"repro/internal/vec"
)

// Semantics describes the per-point computation of a kernel.
type Semantics struct {
	// Boundary supplies the input value arriving along dependence dep at
	// index point x when x − d lies outside the index set.
	Boundary func(x vec.Int, dep int) float64
	// Compute consumes one input per dependence (in[i] arrived along
	// Deps[i]) and produces one output per dependence (out[i] is sent to
	// x + Deps[i]).
	Compute func(x vec.Int, in []float64) []float64
}

// Kernel is a loop nest with dependence structure and optional executable
// semantics.
type Kernel struct {
	Name string
	Nest *loop.Nest
	// Deps is the constant dependence matrix (columns).
	Deps []vec.Int
	// Pi is the recommended hyperplane time function.
	Pi vec.Int
	// Sem is the executable semantics; nil for structure-only kernels.
	Sem *Semantics
}

// Structure builds the computational structure of the kernel.
func (k *Kernel) Structure() (*loop.Structure, error) {
	return loop.NewStructure(k.Nest, k.Deps...)
}

// StructureCtx builds the computational structure with cooperative
// cancellation of the index-set enumeration (see loop.NewStructureCtx).
func (k *Kernel) StructureCtx(ctx context.Context) (*loop.Structure, error) {
	return loop.NewStructureCtx(ctx, k.Nest, k.Deps...)
}

// ErrUnknown is returned by Lookup for names absent from the Registry.
var ErrUnknown = errors.New("kernels: unknown kernel")

// Lookup instantiates a built-in kernel by name. Unknown names return an
// error wrapping ErrUnknown (matchable with errors.Is); non-positive sizes
// are rejected before the constructor runs.
func Lookup(name string, size int64) (*Kernel, error) {
	ctor, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknown, name, strings.Join(Names(), ", "))
	}
	if size < 1 {
		return nil, fmt.Errorf("kernels: size %d must be positive", size)
	}
	return ctor(size), nil
}

// Result is the full dataflow trace of a kernel execution: for every index
// point, the outputs it produced (one per dependence). Two executions are
// equivalent iff their Results are equal.
type Result struct {
	// Out[pointKey][dep] is the value point pointKey sent along Deps[dep].
	Out map[string][]float64
}

// Equal compares two results exactly.
func (r *Result) Equal(o *Result) bool {
	if len(r.Out) != len(o.Out) {
		return false
	}
	for k, v := range r.Out {
		w, ok := o.Out[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	return true
}

// ExitValues collects the values that leave the index set along dependence
// dep, keyed by the producing point, in lexicographic point order. These
// are the kernel's external outputs (e.g. the finished y[i] of matvec leave
// along d_y at j = M).
func (r *Result) ExitValues(st *loop.Structure, dep int) []float64 {
	type kv struct {
		p vec.Int
		v float64
	}
	var out []kv
	for _, p := range st.V {
		succ := p.Add(st.D[dep])
		if !st.HasVertex(succ) {
			out = append(out, kv{p: p, v: r.Out[p.Key()][dep]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].p.Cmp(out[j].p) < 0 })
	vals := make([]float64, len(out))
	for i, e := range out {
		vals[i] = e.v
	}
	return vals
}

// RunSequential executes the kernel's semantics in lexicographic order
// (valid because all dependence vectors are lexicographically positive) and
// returns the full dataflow trace. It is the reference implementation the
// parallel executor is verified against.
func RunSequential(k *Kernel) (*Result, error) {
	if k.Sem == nil {
		return nil, fmt.Errorf("kernels: %s has no semantics", k.Name)
	}
	st, err := k.Structure()
	if err != nil {
		return nil, err
	}
	res := &Result{Out: make(map[string][]float64, len(st.V))}
	in := make([]float64, len(st.D))
	for _, p := range st.V {
		for di, d := range st.D {
			pred := p.Sub(d)
			if st.HasVertex(pred) {
				in[di] = res.Out[pred.Key()][di]
			} else {
				in[di] = k.Sem.Boundary(p, di)
			}
		}
		out := k.Sem.Compute(p, in)
		if len(out) != len(st.D) {
			return nil, fmt.Errorf("kernels: %s Compute returned %d outputs, want %d", k.Name, len(out), len(st.D))
		}
		res.Out[p.Key()] = append([]float64{}, out...)
	}
	return res, nil
}

// prng is a small deterministic generator for kernel input data so tests
// and benches are reproducible without plumbing seeds everywhere.
type prng struct{ s uint64 }

func (p *prng) next() float64 {
	// xorshift64*; mapped into [-1, 1).
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	v := p.s * 2685821657736338717
	return float64(v>>11)/float64(1<<52) - 1
}

func dataMatrix(seed uint64, rows, cols int) [][]float64 {
	g := &prng{s: seed | 1}
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = g.next()
		}
	}
	return m
}

func dataVector(seed uint64, n int) []float64 {
	g := &prng{s: seed | 1}
	v := make([]float64, n)
	for i := range v {
		v[i] = g.next()
	}
	return v
}

// --- Loop L1 (Example 1 of the paper) ---

// L1 returns loop (L1) on the (size+1)×(size+1) index set [0,size]².
// Dependences: A carries (0,1) and (1,1), B carries (1,0).
func L1(size int64) *Kernel {
	n := loop.NewRect("L1", []int64{0, 0}, []int64{size, size})
	n.Stmts = []loop.Stmt{
		{
			Label:  "S1",
			Writes: []loop.Access{{Var: "A", Offset: vec.NewInt(1, 1)}},
			Reads:  []loop.Access{{Var: "A", Offset: vec.NewInt(1, 0)}, {Var: "B", Offset: vec.NewInt(0, 0)}},
			Ops:    1,
		},
		{
			Label:  "S2",
			Writes: []loop.Access{{Var: "B", Offset: vec.NewInt(1, 0)}},
			Reads:  []loop.Access{{Var: "A", Offset: vec.NewInt(0, 0)}},
			Ops:    2,
		},
	}
	// Semantics: channel 0 = A along (0,1), channel 1 = B along (1,0),
	// channel 2 = A along (1,1). Boundary values are position-dependent
	// constants; the constant C of S2 is 0.5.
	deps := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1)}
	sem := &Semantics{
		Boundary: func(x vec.Int, dep int) float64 {
			return float64(x[0]+1) * 0.25 * float64(dep+1) * (1 + 0.125*float64(x[1]))
		},
		Compute: func(x vec.Int, in []float64) []float64 {
			a := in[0] + in[2]*0.5 + in[1] // A[i+1,j+1] combines the two A inputs and B
			b := in[2]*2 + 0.5             // B[i+1,j] from A[i,j]*2 + C
			return []float64{a, b, a}
		},
	}
	return &Kernel{Name: "l1", Nest: n, Deps: deps, Pi: vec.NewInt(1, 1), Sem: sem}
}

// --- Matrix multiplication (Example 2) ---

// MatMul returns the size×size×size matrix-multiplication kernel in the
// rewritten form of Example 2, with dependence matrix I₃:
// A carries along j (0,1,0), B along i (1,0,0), C accumulates along k (0,0,1).
func MatMul(size int64) *Kernel {
	n := loop.NewRect("matmul", []int64{0, 0, 0}, []int64{size - 1, size - 1, size - 1})
	n.Stmts = []loop.Stmt{
		{
			Label:  "A-pipe",
			Writes: []loop.Access{{Var: "A", Offset: vec.NewInt(0, 0, 0)}},
			Reads:  []loop.Access{{Var: "A", Offset: vec.NewInt(0, -1, 0)}},
		},
		{
			Label:  "B-pipe",
			Writes: []loop.Access{{Var: "B", Offset: vec.NewInt(0, 0, 0)}},
			Reads:  []loop.Access{{Var: "B", Offset: vec.NewInt(-1, 0, 0)}},
		},
		{
			Label:  "C-acc",
			Writes: []loop.Access{{Var: "C", Offset: vec.NewInt(0, 0, 0)}},
			Reads:  []loop.Access{{Var: "C", Offset: vec.NewInt(0, 0, -1)}},
			Ops:    2,
		},
	}
	a := dataMatrix(101, int(size), int(size))
	b := dataMatrix(202, int(size), int(size))
	// Channel order matches sorted dependence order:
	// dep0 = (0,0,1) carries C, dep1 = (0,1,0) carries A, dep2 = (1,0,0) carries B.
	deps := []vec.Int{vec.NewInt(0, 0, 1), vec.NewInt(0, 1, 0), vec.NewInt(1, 0, 0)}
	sem := &Semantics{
		Boundary: func(x vec.Int, dep int) float64 {
			i, j, k := x[0], x[1], x[2]
			switch dep {
			case 0: // C enters as 0 at k = 0
				return 0
			case 1: // A[i,k] enters at j = 0
				_ = j
				return a[i][k]
			default: // B[k,j] enters at i = 0
				return b[k][j]
			}
		},
		Compute: func(x vec.Int, in []float64) []float64 {
			c := in[0] + in[1]*in[2]
			return []float64{c, in[1], in[2]}
		},
	}
	k := &Kernel{Name: "matmul", Nest: n, Deps: deps, Pi: vec.NewInt(1, 1, 1), Sem: sem}
	return k
}

// MatMulReference computes A·B directly for verification of the kernel's
// exit values along the C channel.
func MatMulReference(size int64) [][]float64 {
	a := dataMatrix(101, int(size), int(size))
	b := dataMatrix(202, int(size), int(size))
	c := make([][]float64, size)
	for i := range c {
		c[i] = make([]float64, size)
		for j := range c[i] {
			for k := 0; k < int(size); k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

// --- Matrix-vector multiplication (L4/L5, §IV) ---

// MatVec returns the M×M matrix–vector kernel in the rewritten form L5:
// x carries along i (1,0), y accumulates along j (0,1).
func MatVec(m int64) *Kernel {
	n := loop.NewRect("matvec", []int64{1, 1}, []int64{m, m})
	n.Stmts = []loop.Stmt{
		{
			Label:  "x-pipe",
			Writes: []loop.Access{{Var: "x", Offset: vec.NewInt(0, 0)}},
			Reads:  []loop.Access{{Var: "x", Offset: vec.NewInt(-1, 0)}},
		},
		{
			Label:  "y-acc",
			Writes: []loop.Access{{Var: "y", Offset: vec.NewInt(0, 0)}},
			Reads:  []loop.Access{{Var: "y", Offset: vec.NewInt(0, -1)}, {Var: "x", Offset: vec.NewInt(0, 0)}},
			Ops:    2,
		},
	}
	a := dataMatrix(303, int(m)+1, int(m)+1)
	x := dataVector(404, int(m)+1)
	// dep0 = (0,1) carries y; dep1 = (1,0) carries x.
	deps := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0)}
	sem := &Semantics{
		Boundary: func(p vec.Int, dep int) float64 {
			if dep == 0 {
				return 0 // y enters as 0 at j = 1
			}
			return x[p[1]] // x[j] enters at i = 1
		},
		Compute: func(p vec.Int, in []float64) []float64 {
			y := in[0] + a[p[0]][p[1]]*in[1]
			return []float64{y, in[1]}
		},
	}
	return &Kernel{Name: "matvec", Nest: n, Deps: deps, Pi: vec.NewInt(1, 1), Sem: sem}
}

// MatVecReference computes y = A·x directly (1-indexed like L4).
func MatVecReference(m int64) []float64 {
	a := dataMatrix(303, int(m)+1, int(m)+1)
	x := dataVector(404, int(m)+1)
	y := make([]float64, m)
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			y[i-1] += a[i][j] * x[j]
		}
	}
	return y
}

// --- Convolution ---

// Convolution returns the systolic convolution kernel
// y[i] = Σ_j w[j]·x[i−j] over outputs i ∈ [0, n) and taps j ∈ [0, taps):
// y accumulates along (0,1), w flows along (1,0), x flows along (1,1).
// Its dependence matrix matches loop L1's.
func Convolution(n, taps int64) *Kernel {
	nest := loop.NewRect("convolution", []int64{0, 0}, []int64{n - 1, taps - 1})
	nest.Stmts = []loop.Stmt{
		{
			Label:  "acc",
			Writes: []loop.Access{{Var: "y", Offset: vec.NewInt(0, 0)}},
			Reads: []loop.Access{
				{Var: "y", Offset: vec.NewInt(0, -1)},
				{Var: "w", Offset: vec.NewInt(-1, 0)},
				{Var: "x", Offset: vec.NewInt(-1, -1)},
			},
			Ops: 2,
		},
		{
			Label:  "w-pipe",
			Writes: []loop.Access{{Var: "w", Offset: vec.NewInt(0, 0)}},
			Reads:  []loop.Access{{Var: "w", Offset: vec.NewInt(-1, 0)}},
		},
		{
			Label:  "x-pipe",
			Writes: []loop.Access{{Var: "x", Offset: vec.NewInt(0, 0)}},
			Reads:  []loop.Access{{Var: "x", Offset: vec.NewInt(-1, -1)}},
		},
	}
	w := dataVector(505, int(taps))
	x := dataVector(606, int(n+taps))
	// dep0 = (0,1) carries y; dep1 = (1,0) carries w; dep2 = (1,1) carries x.
	deps := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1)}
	sem := &Semantics{
		Boundary: func(p vec.Int, dep int) float64 {
			i, j := p[0], p[1]
			switch dep {
			case 0:
				return 0
			case 1:
				return w[j]
			default:
				// x[i−j] enters wherever (i−1, j−1) leaves the set.
				d := i - j
				if d < 0 {
					return 0
				}
				return x[d]
			}
		},
		Compute: func(p vec.Int, in []float64) []float64 {
			y := in[0] + in[1]*in[2]
			return []float64{y, in[1], in[2]}
		},
	}
	return &Kernel{Name: "convolution", Nest: nest, Deps: deps, Pi: vec.NewInt(1, 1), Sem: sem}
}

// ConvolutionReference computes the convolution directly.
func ConvolutionReference(n, taps int64) []float64 {
	w := dataVector(505, int(taps))
	x := dataVector(606, int(n+taps))
	y := make([]float64, n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < taps; j++ {
			if i-j >= 0 {
				y[i] += w[j] * x[i-j]
			}
		}
	}
	return y
}

// --- 1-D stencil over time (Jacobi / SOR sweep) ---

// Stencil returns a 1-D three-point stencil iterated over time:
// u(t,i) = (u(t−1,i−1) + 2·u(t−1,i) + u(t−1,i+1)) / 4,
// dependences {(1,1), (1,0), (1,−1)}. Its natural time function Π = (1,0)
// exercises the r = 1 corner of the partitioning method (the projected
// dependence vectors are already integral).
func Stencil(steps, width int64) *Kernel {
	nest := loop.NewRect("stencil", []int64{0, 0}, []int64{steps - 1, width - 1})
	nest.Stmts = []loop.Stmt{
		{
			Label:  "update",
			Writes: []loop.Access{{Var: "u", Offset: vec.NewInt(0, 0)}},
			Reads: []loop.Access{
				{Var: "u", Offset: vec.NewInt(-1, -1)},
				{Var: "u", Offset: vec.NewInt(-1, 0)},
				{Var: "u", Offset: vec.NewInt(-1, 1)},
			},
			Ops: 4,
		},
	}
	u0 := dataVector(707, int(width))
	// dep0 = (1,-1), dep1 = (1,0), dep2 = (1,1); all carry u.
	deps := []vec.Int{vec.NewInt(1, -1), vec.NewInt(1, 0), vec.NewInt(1, 1)}
	boundaryVal := func(t, i int64) float64 {
		if i < 0 || i >= width {
			return 0 // fixed zero walls
		}
		return u0[i]
	}
	sem := &Semantics{
		Boundary: func(p vec.Int, dep int) float64 {
			t, i := p[0], p[1]
			switch dep {
			case 0: // from (t-1, i+1)
				if t == 0 {
					return boundaryVal(t-1, i+1)
				}
				return 0 // i+1 off the right wall
			case 1: // from (t-1, i)
				return boundaryVal(t-1, i)
			default: // from (t-1, i-1)
				if t == 0 {
					return boundaryVal(t-1, i-1)
				}
				return 0 // i-1 off the left wall
			}
		},
		Compute: func(p vec.Int, in []float64) []float64 {
			u := (in[0] + 2*in[1] + in[2]) / 4
			return []float64{u, u, u}
		},
	}
	return &Kernel{Name: "stencil", Nest: nest, Deps: deps, Pi: vec.NewInt(1, 0), Sem: sem}
}

// StencilReference runs the stencil directly.
func StencilReference(steps, width int64) []float64 {
	u := dataVector(707, int(width))
	for t := int64(0); t < steps; t++ {
		next := make([]float64, width)
		get := func(i int64) float64 {
			if i < 0 || i >= width {
				return 0
			}
			return u[i]
		}
		for i := int64(0); i < width; i++ {
			next[i] = (get(i+1) + 2*get(i) + get(i-1)) / 4
		}
		u = next
	}
	return u
}

// --- Uniformized transitive closure ---

// Closure returns a pipelined boolean matrix "multiplication" (one
// repeated-squaring step of transitive closure) with the same dependence
// structure as matmul but OR/AND semantics encoded in floats (0/1). The
// paper lists transitive closure among the algorithms that cannot be
// independently partitioned.
func Closure(size int64) *Kernel {
	k := MatMul(size)
	k.Name = "closure"
	k.Nest.Name = "closure"
	adj := dataMatrix(808, int(size), int(size))
	bit := func(v float64) float64 {
		if v > 0.3 {
			return 1
		}
		return 0
	}
	k.Sem = &Semantics{
		Boundary: func(x vec.Int, dep int) float64 {
			i, j, kk := x[0], x[1], x[2]
			switch dep {
			case 0:
				return 0
			case 1:
				return bit(adj[i][kk])
			default:
				return bit(adj[kk][j])
			}
		},
		Compute: func(x vec.Int, in []float64) []float64 {
			c := in[0]
			if in[1] == 1 && in[2] == 1 {
				c = 1
			}
			return []float64{c, in[1], in[2]}
		},
	}
	return k
}

// ClosureStep builds the boolean-squaring kernel over an explicit 0/1
// adjacency matrix (entries must be exactly 0 or 1): the C channel's exit
// values are the boolean product adj·adj. Iterating
// B ← B ∨ (B·B) with this kernel computes the transitive closure in
// ⌈log₂ n⌉ parallel rounds (see examples/closure).
func ClosureStep(adj [][]float64) *Kernel {
	size := int64(len(adj))
	k := MatMul(size)
	k.Name = "closure-step"
	k.Nest.Name = "closure-step"
	k.Sem = &Semantics{
		Boundary: func(x vec.Int, dep int) float64 {
			i, j, kk := x[0], x[1], x[2]
			switch dep {
			case 0:
				return 0
			case 1:
				return adj[i][kk]
			default:
				return adj[kk][j]
			}
		},
		Compute: func(x vec.Int, in []float64) []float64 {
			c := in[0]
			if in[1] == 1 && in[2] == 1 {
				c = 1
			}
			return []float64{c, in[1], in[2]}
		},
	}
	return k
}

// ClosureReference computes one boolean-product step directly.
func ClosureReference(size int64) [][]float64 {
	adj := dataMatrix(808, int(size), int(size))
	bit := func(v float64) float64 {
		if v > 0.3 {
			return 1
		}
		return 0
	}
	c := make([][]float64, size)
	for i := range c {
		c[i] = make([]float64, size)
		for j := range c[i] {
			for k := 0; k < int(size); k++ {
				if bit(adj[i][k]) == 1 && bit(adj[k][j]) == 1 {
					c[i][j] = 1
				}
			}
		}
	}
	return c
}

// --- Discrete cosine transform (matvec-shaped) ---

// DCT returns an m-point discrete cosine transform as a matvec-shaped
// systolic kernel: coefficient values are computed in place from the index
// point, the input vector flows along (1,0), partial sums along (0,1).
func DCT(m int64) *Kernel {
	k := MatVec(m)
	k.Name = "dct"
	k.Nest.Name = "dct"
	x := dataVector(909, int(m)+1)
	k.Sem = &Semantics{
		Boundary: func(p vec.Int, dep int) float64 {
			if dep == 0 {
				return 0
			}
			return x[p[1]]
		},
		Compute: func(p vec.Int, in []float64) []float64 {
			i, j := p[0], p[1]
			c := math.Cos(math.Pi / float64(m) * (float64(j) - 0.5) * float64(i-1))
			y := in[0] + c*in[1]
			return []float64{y, in[1]}
		},
	}
	return k
}

// --- 2-D five-point stencil over time (SOR/Jacobi sweep, 3-nest) ---

// SOR2D returns a 2-D five-point stencil iterated over time — a 3-nested
// loop with five dependence vectors {(1,0,0), (1,±1,0), (1,0,±1)} whose
// natural time function is Π = (1,0,0). All projected dependence vectors
// are integral (r = 1), exercising the degenerate-grouping corner of
// Algorithm 1 in three dimensions, where the projected structure is 2-D
// and two auxiliary/grouping directions are in play.
func SOR2D(steps, width int64) *Kernel {
	nest := loop.NewRect("sor2d", []int64{0, 0, 0}, []int64{steps - 1, width - 1, width - 1})
	reads := []loop.Access{
		{Var: "u", Offset: vec.NewInt(-1, 0, 0)},
		{Var: "u", Offset: vec.NewInt(-1, -1, 0)},
		{Var: "u", Offset: vec.NewInt(-1, 1, 0)},
		{Var: "u", Offset: vec.NewInt(-1, 0, -1)},
		{Var: "u", Offset: vec.NewInt(-1, 0, 1)},
	}
	nest.Stmts = []loop.Stmt{{
		Label:  "update",
		Writes: []loop.Access{{Var: "u", Offset: vec.NewInt(0, 0, 0)}},
		Reads:  reads,
		Ops:    5,
	}}
	u0 := dataMatrix(1111, int(width), int(width))
	// Dependence channel order (lexicographic): (1,-1,0), (1,0,-1),
	// (1,0,0), (1,0,1), (1,1,0); the value arriving along (1,a,b) comes
	// from grid cell (i−a, j−b) of the previous timestep.
	deps := []vec.Int{
		vec.NewInt(1, -1, 0), vec.NewInt(1, 0, -1), vec.NewInt(1, 0, 0),
		vec.NewInt(1, 0, 1), vec.NewInt(1, 1, 0),
	}
	cell := func(i, j int64) float64 {
		if i < 0 || i >= width || j < 0 || j >= width {
			return 0
		}
		return u0[i][j]
	}
	sem := &Semantics{
		Boundary: func(p vec.Int, dep int) float64 {
			t, i, j := p[0], p[1], p[2]
			d := deps[dep]
			if t == 0 {
				return cell(i-d[1], j-d[2])
			}
			return 0 // off the walls at later steps
		},
		Compute: func(p vec.Int, in []float64) []float64 {
			u := (in[0] + in[1] + 4*in[2] + in[3] + in[4]) / 8
			out := make([]float64, len(in))
			for i := range out {
				out[i] = u
			}
			return out
		},
	}
	return &Kernel{Name: "sor2d", Nest: nest, Deps: deps, Pi: vec.NewInt(1, 0, 0), Sem: sem}
}

// SOR2DReference runs the five-point sweep directly and returns the final
// grid flattened row-major.
func SOR2DReference(steps, width int64) []float64 {
	u := dataMatrix(1111, int(width), int(width))
	get := func(g [][]float64, i, j int64) float64 {
		if i < 0 || i >= width || j < 0 || j >= width {
			return 0
		}
		return g[i][j]
	}
	for t := int64(0); t < steps; t++ {
		next := make([][]float64, width)
		for i := int64(0); i < width; i++ {
			next[i] = make([]float64, width)
			for j := int64(0); j < width; j++ {
				next[i][j] = (get(u, i-1, j) + get(u, i, j-1) + 4*get(u, i, j) + get(u, i, j+1) + get(u, i+1, j)) / 8
			}
		}
		u = next
	}
	out := make([]float64, 0, width*width)
	for i := int64(0); i < width; i++ {
		out = append(out, u[i]...)
	}
	return out
}

// --- Triangular iteration space ---

// Triangular returns a kernel over the triangular index set
// {(i,j) | 0 ≤ i < n, 0 ≤ j ≤ i} with dependences {(0,1), (1,1)} and
// synthesized semantics. Non-rectangular index sets stress the boundary
// groups of Algorithm 1 (many groups are partial) and the Step 3/Step 5
// re-seeding path.
func Triangular(n int64) *Kernel {
	nest := &loop.Nest{
		Name:  "triangular",
		Dims:  2,
		Lower: []loop.Affine{loop.Const(0), loop.Const(0)},
		Upper: []loop.Affine{loop.Const(n - 1), {Const: 0, Coeffs: []int64{1, 0}}},
	}
	deps := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 1)}
	return Generic("triangular", nest, deps, vec.NewInt(1, 1), 4242)
}

// Registry maps kernel names to constructors over a single size parameter
// (kernels with two natural parameters use size for both).
var Registry = map[string]func(size int64) *Kernel{
	"l1":          L1,
	"matmul":      MatMul,
	"matvec":      MatVec,
	"convolution": func(s int64) *Kernel { return Convolution(s, s) },
	"stencil":     func(s int64) *Kernel { return Stencil(s, s) },
	"sor2d":       func(s int64) *Kernel { return SOR2D(s, s) },
	"triangular":  Triangular,
	"closure":     Closure,
	"dct":         DCT,
}

// Names returns the registry keys in sorted order.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
