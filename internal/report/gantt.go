package report

import (
	"fmt"
	"strings"
)

// GanttSpan is one activity interval for the Gantt renderer (mirrors
// sim.Span without importing it, keeping report dependency-free).
type GanttSpan struct {
	Proc       int
	Start, End float64
	// Glyph is the character drawn for the span ('#' compute, '~' send).
	Glyph byte
}

// Gantt renders per-processor activity timelines as ASCII rows of width
// columns: '#' for compute, '~' for communication (by convention of the
// caller's glyphs), '.' for idle. When multiple activities fall into one
// column the later glyph in the span list wins, so callers should append
// communication after computation if they want sends visible.
func Gantt(spans []GanttSpan, numProcs int, width int) string {
	if width < 10 {
		width = 60
	}
	var makespan float64
	for _, s := range spans {
		if s.End > makespan {
			makespan = s.End
		}
	}
	if makespan <= 0 || numProcs <= 0 {
		return "(empty timeline)\n"
	}
	rows := make([][]byte, numProcs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / makespan
	for _, s := range spans {
		if s.Proc < 0 || s.Proc >= numProcs {
			continue
		}
		a := int(s.Start * scale)
		b := int(s.End * scale)
		if b >= width {
			b = width - 1
		}
		if b < a {
			b = a
		}
		for c := a; c <= b; c++ {
			rows[s.Proc][c] = s.Glyph
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0%s%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", makespan))), makespan)
	for p, row := range rows {
		fmt.Fprintf(&sb, "P%-3d %s\n", p, row)
	}
	return sb.String()
}
