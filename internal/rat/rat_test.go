package rat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRat produces small random rationals for property tests so products of
// several values stay far from int64 overflow.
func genRat(r *rand.Rand) Rat {
	num := r.Int63n(2001) - 1000
	den := r.Int63n(1000) + 1
	if r.Intn(2) == 0 {
		den = -den
	}
	return New(num, den)
}

// quickCfg makes testing/quick generate Rats via genRat.
var quickCfg = &quick.Config{
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(genRat(r))
		}
	},
}

func TestNewCanonical(t *testing.T) {
	cases := []struct {
		n, d     int64
		wantN    int64
		wantD    int64
		wantText string
	}{
		{1, 2, 1, 2, "1/2"},
		{2, 4, 1, 2, "1/2"},
		{-2, 4, -1, 2, "-1/2"},
		{2, -4, -1, 2, "-1/2"},
		{-2, -4, 1, 2, "1/2"},
		{0, 7, 0, 1, "0"},
		{6, 3, 2, 1, "2"},
		{-9, 3, -3, 1, "-3"},
	}
	for _, c := range cases {
		r := New(c.n, c.d)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
		if r.String() != c.wantText {
			t.Errorf("New(%d,%d).String() = %q, want %q", c.n, c.d, r.String(), c.wantText)
		}
	}
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat // struct zero value, den==0 internally
	if !r.IsZero() || r.String() != "0" || !r.Add(One).Equal(One) {
		t.Fatal("zero-value Rat does not behave as 0")
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmeticBasics(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
	if got := half.Neg(); !got.Equal(New(-1, 2)) {
		t.Errorf("-1/2 = %v", got)
	}
	if got := New(-3, 4).Abs(); !got.Equal(New(3, 4)) {
		t.Errorf("|-3/4| = %v", got)
	}
	if got := half.ScaleInt(6); !got.Equal(FromInt(3)) {
		t.Errorf("(1/2)*6 = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv of zero did not panic")
		}
	}()
	Zero.Inv()
}

func TestFieldAxioms(t *testing.T) {
	add := func(a, b Rat) bool { return a.Add(b).Equal(b.Add(a)) }
	if err := quick.Check(add, quickCfg); err != nil {
		t.Error("add commutativity:", err)
	}
	mul := func(a, b Rat) bool { return a.Mul(b).Equal(b.Mul(a)) }
	if err := quick.Check(mul, quickCfg); err != nil {
		t.Error("mul commutativity:", err)
	}
	assoc := func(a, b, c Rat) bool {
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(assoc, quickCfg); err != nil {
		t.Error("add associativity:", err)
	}
	distrib := func(a, b, c Rat) bool {
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distrib, quickCfg); err != nil {
		t.Error("distributivity:", err)
	}
	inverse := func(a Rat) bool {
		if a.IsZero() {
			return true
		}
		return a.Mul(a.Inv()).Equal(One) && a.Add(a.Neg()).IsZero()
	}
	if err := quick.Check(inverse, quickCfg); err != nil {
		t.Error("inverses:", err)
	}
}

func TestCanonicalFormInvariant(t *testing.T) {
	f := func(a, b Rat) bool {
		for _, v := range []Rat{a.Add(b), a.Sub(b), a.Mul(b)} {
			if v.Den() <= 0 {
				return false
			}
			if v.Num() == 0 && v.Den() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestCmpOrdering(t *testing.T) {
	vals := []Rat{New(-3, 2), New(-1, 1), Zero, New(1, 3), New(1, 2), One, New(7, 3)}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r      Rat
		fl, ce int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{Zero, 0, 0},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if c.r.Floor() != c.fl || c.r.Ceil() != c.ce {
			t.Errorf("%v: floor=%d ceil=%d, want %d,%d", c.r, c.r.Floor(), c.r.Ceil(), c.fl, c.ce)
		}
	}
}

func TestIntAndIsInt(t *testing.T) {
	if v, ok := FromInt(9).Int(); !ok || v != 9 {
		t.Error("FromInt(9).Int() failed")
	}
	if _, ok := New(1, 2).Int(); ok {
		t.Error("New(1,2).Int() should not be integral")
	}
	if !New(4, 2).IsInt() {
		t.Error("4/2 should be integral")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
		err  bool
	}{
		{"1/2", New(1, 2), false},
		{"-3/9", New(-1, 3), false},
		{" 4 / 6 ", New(2, 3), false},
		{"7", FromInt(7), false},
		{"-7", FromInt(-7), false},
		{"1/0", Zero, true},
		{"abc", Zero, true},
		{"1/x", Zero, true},
		{"x/1", Zero, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q) expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(a Rat) bool {
		got, err := Parse(a.String())
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestMapKeyUsability(t *testing.T) {
	m := map[Rat]int{}
	m[New(1, 2)] = 1
	m[New(2, 4)] = 2 // same canonical value must overwrite
	if len(m) != 1 || m[New(3, 6)] != 2 {
		t.Fatal("canonical Rats are not usable as map keys")
	}
}

func TestFloat(t *testing.T) {
	if New(1, 2).Float() != 0.5 || New(-3, 4).Float() != -0.75 {
		t.Fatal("Float conversion wrong")
	}
}
