package loopmap

// Benchmark harness: one benchmark per table/figure of the paper (see the
// per-experiment index in DESIGN.md) plus ablation benches for the design
// choices the paper leaves open. Custom metrics report the quantities the
// paper's artifacts contain (block counts, interblock dependences, hop
// weights, symbolic T_exec coefficients) so `go test -bench=.` regenerates
// the evaluation alongside the timing numbers.

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/sim"
)

func mustPlan(b *testing.B, kernel string, size int64, dim int) *Plan {
	b.Helper()
	plan, err := NewPlan(NewKernel(kernel, size), PlanOptions{CubeDim: dim})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkFig1StructureL1 regenerates Fig. 1: the computational structure
// and hyperplane schedule of loop L1.
func BenchmarkFig1StructureL1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel("l1", 3)
		st, err := k.Structure()
		if err != nil {
			b.Fatal(err)
		}
		sch, err := hyperplane.NewSchedule(st, k.Pi)
		if err != nil {
			b.Fatal(err)
		}
		if sch.Steps() != 7 || st.EdgeCount() != 33 {
			b.Fatalf("Fig. 1 shape broken: steps=%d edges=%d", sch.Steps(), st.EdgeCount())
		}
	}
	b.ReportMetric(7, "hyperplanes")
	b.ReportMetric(33, "dependences")
}

// BenchmarkFig3PartitionL1 regenerates Fig. 3: the grouping of loop L1
// (4 blocks, 12 of 33 dependences interblock).
func BenchmarkFig3PartitionL1(b *testing.B) {
	var inter int
	for i := 0; i < b.N; i++ {
		plan := mustPlan(b, "l1", 3, -1)
		es := plan.Partitioning.EdgeStats()
		if plan.Partitioning.NumBlocks() != 4 || es.InterBlock != 12 {
			b.Fatalf("Fig. 3 shape broken: blocks=%d inter=%d", plan.Partitioning.NumBlocks(), es.InterBlock)
		}
		inter = es.InterBlock
	}
	b.ReportMetric(4, "blocks")
	b.ReportMetric(float64(inter), "interblock-deps")
}

// BenchmarkFig5ProjectMatMul regenerates Fig. 5: the projected structure of
// the 4×4×4 matrix multiplication (37 projected points, r = 3).
func BenchmarkFig5ProjectMatMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := mustPlan(b, "matmul", 4, -1)
		if len(plan.Projected.Points) != 37 || plan.Partitioning.R != 3 {
			b.Fatalf("Fig. 5 shape broken: points=%d r=%d", len(plan.Projected.Points), plan.Partitioning.R)
		}
	}
	b.ReportMetric(37, "projected-points")
	b.ReportMetric(3, "group-size-r")
}

// BenchmarkFig7GroupMatMul regenerates Figs. 6–7: 17 groups with max TIG
// out-degree exactly the Theorem 2 bound 2m − β = 4.
func BenchmarkFig7GroupMatMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := mustPlan(b, "matmul", 4, -1)
		if plan.Partitioning.NumBlocks() != 17 || plan.TIG.MaxOutDegree() != 4 {
			b.Fatalf("Fig. 7 shape broken: blocks=%d outdeg=%d",
				plan.Partitioning.NumBlocks(), plan.TIG.MaxOutDegree())
		}
	}
	b.ReportMetric(17, "groups")
	b.ReportMetric(4, "max-out-degree")
}

// BenchmarkFig8MapTIG regenerates Fig. 8: a 4×4 mesh TIG Gray-mapped onto a
// 3-cube with mesh-edge dilation 1.
func BenchmarkFig8MapTIG(b *testing.B) {
	items := make([]mapping.Item, 0, 16)
	for y := int64(0); y < 4; y++ {
		for x := int64(0); x < 4; x++ {
			items = append(items, mapping.Item{ID: int(4*y + x), Coords: []int64{x, y}})
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := mapping.MapItems(items, 3, mapping.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, cl := range res.Clusters {
			if len(cl) != 2 {
				b.Fatalf("Fig. 8 shape broken: cluster %v", cl)
			}
		}
	}
	b.ReportMetric(8, "clusters")
}

// BenchmarkFig9StructureMatVec regenerates Fig. 9: the computational
// structure of loop L5 (2M−1 projection lines, M blocks).
func BenchmarkFig9StructureMatVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := mustPlan(b, "matvec", 16, -1)
		if len(plan.Projected.Points) != 31 || plan.Partitioning.NumBlocks() != 16 {
			b.Fatalf("Fig. 9 shape broken")
		}
	}
	b.ReportMetric(31, "projection-lines")
}

// BenchmarkTable1MatVec regenerates Table I row by row: the symbolic
// coefficients of T_exec(N) for M = 1024.
func BenchmarkTable1MatVec(b *testing.B) {
	paperCalc := map[int64]int64{1: 2097152, 4: 786944, 16: 245888, 64: 64544, 256: 16328, 1024: 4094}
	for _, n := range analysis.PaperTableISizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var calc, comm int64
			for i := 0; i < b.N; i++ {
				calc = analysis.MatVecCalcOps(1024, n)
				comm = analysis.MatVecCommWords(1024, n)
				if calc != paperCalc[n] {
					b.Fatalf("Table I coefficient for N=%d: got %d, want %d", n, calc, paperCalc[n])
				}
			}
			b.ReportMetric(float64(calc), "tcalc-coeff")
			b.ReportMetric(float64(comm), "comm-coeff")
		})
	}
}

// BenchmarkTable1Simulated runs the detailed event simulation behind the
// Table I cross-check at a laptop-friendly M.
func BenchmarkTable1Simulated(b *testing.B) {
	const m = 128
	for _, dim := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			plan := mustPlan(b, "matvec", m, dim)
			var makespan float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := plan.Simulate(machine.Era1991(), SimOptions{})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkAblationBaselines compares the paper's grouping against the
// baseline partitionings (A1 in DESIGN.md).
func BenchmarkAblationBaselines(b *testing.B) {
	plan := mustPlan(b, "matmul", 8, -1)
	st := plan.Structure
	blocks := map[string]*baselines.Blocks{
		"paper": baselines.FromPartitioning("paper", plan.Partitioning.BlockOf, plan.Partitioning.NumBlocks()),
		"lines": baselines.LinePerBlock(plan.Projected),
	}
	if rr, err := baselines.RoundRobin(st, plan.Partitioning.NumBlocks()); err == nil {
		blocks["round-robin"] = rr
	}
	for name, bl := range blocks {
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				a := sim.Assignment{ProcOf: bl.Of, NumProcs: bl.N}
				s, err := sim.Simulate(st, plan.Schedule, a, machine.Params{TCalc: 50, TStart: 2, TComm: 1}, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			es := bl.EdgeStats(st)
			b.ReportMetric(float64(es.InterBlock), "interblock-deps")
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkAblationGroupingChoice sweeps the grouping-vector tie-break the
// paper leaves arbitrary.
func BenchmarkAblationGroupingChoice(b *testing.B) {
	for choice := 1; choice <= 3; choice++ {
		b.Run(fmt.Sprintf("choice=%d", choice), func(b *testing.B) {
			var traffic int64
			for i := 0; i < b.N; i++ {
				plan, err := NewPlan(NewKernel("matmul", 6), PlanOptions{
					CubeDim:   -1,
					Partition: PartitionOptions{GroupingChoice: choice},
				})
				if err != nil {
					b.Fatal(err)
				}
				traffic = plan.TIG.TotalTraffic()
			}
			b.ReportMetric(float64(traffic), "tig-traffic")
		})
	}
}

// BenchmarkAblationGranularity sweeps the merge factor q: groups of q·r
// projected points trade schedule overlap (Theorem 1 is relaxed) for
// less interblock traffic. Under 1991-era costs coarser grain can win.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, q := range []int64{1, 2, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			var traffic int64
			var makespan float64
			for i := 0; i < b.N; i++ {
				plan, err := NewPlan(NewKernel("matvec", 64), PlanOptions{
					CubeDim:   3,
					Partition: PartitionOptions{MergeFactor: q},
				})
				if err != nil {
					b.Fatal(err)
				}
				traffic = plan.TIG.TotalTraffic()
				s, err := plan.Simulate(machine.Era1991(), SimOptions{})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(float64(traffic), "tig-traffic")
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkAblationMapping compares Gray, linear, and random mappings
// (A2 in DESIGN.md).
func BenchmarkAblationMapping(b *testing.B) {
	plan := mustPlan(b, "matmul", 10, 4)
	gray, err := plan.EvaluateMapping()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gray", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.MapPartitioning(plan.Partitioning, 4, MapOptions{})
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.Evaluate(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
	})
	b.Run("linear", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.Linear(plan.TIG.N, 4)
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.Evaluate(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
		if hw < gray.HopWeight {
			b.Fatalf("linear hop-weight %d beat gray %d", hw, gray.HopWeight)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.Greedy(plan.TIG, 4, 2)
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.Evaluate(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
	})
	b.Run("random", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.Random(plan.TIG.N, 4, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.Evaluate(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
	})
}

// BenchmarkGrainSweep regenerates the grain-size analysis (A3): the
// comm/comp ratio across problem sizes.
func BenchmarkGrainSweep(b *testing.B) {
	for _, m := range []int64{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = analysis.CommCompRatio(m, 16, machine.Era1991())
			}
			b.ReportMetric(ratio, "comm/comp")
		})
	}
}

// BenchmarkHyperplaneSearch measures the exhaustive optimal-Π search.
func BenchmarkHyperplaneSearch(b *testing.B) {
	k := NewKernel("matmul", 6)
	st, err := k.Structure()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch, err := hyperplane.FindOptimal(st, 2)
		if err != nil {
			b.Fatal(err)
		}
		if !sch.Pi.Equal(Vec(1, 1, 1)) {
			b.Fatalf("unexpected Π %v", sch.Pi)
		}
	}
}

// BenchmarkPartitionScaling measures Algorithm 1 across problem sizes.
func BenchmarkPartitionScaling(b *testing.B) {
	for _, size := range []int64{4, 8, 16} {
		b.Run(fmt.Sprintf("matmul-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := mustPlan(b, "matmul", size, -1)
				if err := core.CheckInvariants(plan.Partitioning); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentExecution measures the goroutine/channel executor.
func BenchmarkConcurrentExecution(b *testing.B) {
	for _, kernel := range []string{"matmul", "matvec", "stencil"} {
		b.Run(kernel, func(b *testing.B) {
			plan := mustPlan(b, kernel, 8, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParser measures the DSL front end.
func BenchmarkParser(b *testing.B) {
	src := `
for i = 0 to 63
for j = 0 to 63
{
  A[i+1, j+1] = A[i+1, j] + B[i, j]
  B[i+1, j]   = A[i, j] * 2 + C
}
`
	for i := 0; i < b.N; i++ {
		if _, err := ParseKernel("bench", src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeshVsCubeMapping compares Algorithm 2's two targets.
func BenchmarkMeshVsCubeMapping(b *testing.B) {
	plan := mustPlan(b, "matmul", 10, 4)
	b.Run("cube", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.MapPartitioning(plan.Partitioning, 4, MapOptions{})
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.Evaluate(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
	})
	b.Run("mesh4x4", func(b *testing.B) {
		var hw int64
		for i := 0; i < b.N; i++ {
			m, err := mapping.MapPartitioningMesh(plan.Partitioning, 4, 4, MapOptions{})
			if err != nil {
				b.Fatal(err)
			}
			hw = mapping.EvaluateMesh(plan.TIG, m).HopWeight
		}
		b.ReportMetric(float64(hw), "hop-weight")
	})
}

// BenchmarkAblationLinkContention measures the cost of the contended
// network model and reports the makespan inflation it predicts.
func BenchmarkAblationLinkContention(b *testing.B) {
	plan := mustPlan(b, "matmul", 8, 3)
	params := machine.Params{TCalc: 1, TStart: 10, TComm: 5}
	for _, cont := range []bool{false, true} {
		name := "uncontended"
		if cont {
			name = "contended"
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				s, err := plan.Simulate(params, SimOptions{LinkContention: cont})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkPrediction measures the closed-form predictor and reports its
// gap to the event simulation.
func BenchmarkPrediction(b *testing.B) {
	plan := mustPlan(b, "matvec", 64, 3)
	params := machine.Era1991()
	s, err := plan.Simulate(params, SimOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var pred float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := analysis.PredictMapped(plan.Partitioning, plan.TIG, plan.Mapping, params)
		pred = pr.Time
	}
	b.ReportMetric(pred, "predicted")
	b.ReportMetric(s.Makespan, "simulated")
}

// BenchmarkPaperScaleMatVec runs the full Table I workload — matvec at
// M = 1024 (one million iterations) on a 32-processor cube — through
// partitioning, mapping, and simulation, asserting the analytic 2W.
func BenchmarkPaperScaleMatVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan, err := NewPlan(NewKernel("matvec", 1024), PlanOptions{CubeDim: 5})
		if err != nil {
			b.Fatal(err)
		}
		s, err := plan.Simulate(machine.Era1991(), SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if got := s.MaxProcOps / 3 * 2; got != analysis.MatVecCalcOps(1024, 32) {
			b.Fatalf("critical ops %d != analytic %d", got, analysis.MatVecCalcOps(1024, 32))
		}
	}
	b.ReportMetric(1024*1024, "iterations")
}

// BenchmarkSimulatorThroughput measures event-simulation cost per vertex.
func BenchmarkSimulatorThroughput(b *testing.B) {
	plan := mustPlan(b, "matvec", 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(machine.Era1991(), SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(plan.Structure.V)), "vertices")
}

// BenchmarkVertexIndex compares the stride-based dense vertex index against
// the string-keyed map it replaced, resolving every vertex and one neighbor
// probe per vertex (the partitioner's and simulator's access pattern).
func BenchmarkVertexIndex(b *testing.B) {
	k := NewKernel("matmul", 24) // 13824 vertices, rectangular
	st, err := k.Structure()
	if err != nil {
		b.Fatal(err)
	}
	d := st.D[0]
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sum := 0
			for vi, p := range st.V {
				sum += st.VertexIndex(p) + st.NeighborIndex(vi, d)
			}
			if sum == 0 {
				b.Fatal("index lookups degenerated")
			}
		}
		b.ReportMetric(float64(2*len(st.V)), "lookups/op")
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		m := make(map[string]int, len(st.V))
		for i, p := range st.V {
			m[p.Key()] = i
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum := 0
			for _, p := range st.V {
				vi := m[p.Key()]
				ni, ok := m[p.Add(d).Key()]
				if !ok {
					ni = -1
				}
				sum += vi + ni
			}
			if sum == 0 {
				b.Fatal("index lookups degenerated")
			}
		}
		b.ReportMetric(float64(2*len(st.V)), "lookups/op")
	})
}

// BenchmarkSimulateBlockLevel compares the two simulation engines on the
// Table I workload shape — matvec on a 32-processor cube — where they are
// proven bit-identical (see internal/sim engine tests).
func BenchmarkSimulateBlockLevel(b *testing.B) {
	plan := mustPlan(b, "matvec", 512, 5)
	params := machine.Era1991()
	for _, eng := range []struct {
		name   string
		engine SimEngine
	}{{"point", EnginePoint}, {"block", EngineBlock}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			var makespan float64
			for i := 0; i < b.N; i++ {
				s, err := plan.Simulate(params, SimOptions{Engine: eng.engine})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(makespan, "makespan")
			b.ReportMetric(float64(len(plan.Structure.V)), "vertices")
		})
	}
}

// BenchmarkSweepFanOut measures the Remap-based sweep unit — clone the
// mapping phase and simulate — against rebuilding the whole plan, the
// savings cmd/sweep's parallel fan-out multiplies across its grid.
func BenchmarkSweepFanOut(b *testing.B) {
	base := mustPlan(b, "matvec", 128, -1)
	params := machine.Era1991()
	b.Run("remap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := base.Remap(3)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plan.Simulate(params, SimOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := mustPlan(b, "matvec", 128, 3)
			if _, err := plan.Simulate(params, SimOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
