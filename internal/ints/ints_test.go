package ints

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAbs(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {-1, 1}, {42, 42}, {-42, 42},
		{math.MaxInt64, math.MaxInt64}, {math.MinInt64 + 1, math.MaxInt64},
	}
	for _, c := range cases {
		if got := Abs(c.in); got != c.want {
			t.Errorf("Abs(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAbsPanicsOnMinInt64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Abs(MinInt64) did not panic")
		}
	}()
	Abs(math.MinInt64)
}

func TestSign(t *testing.T) {
	if Sign(-7) != -1 || Sign(0) != 0 || Sign(9) != 1 {
		t.Fatal("Sign basic cases failed")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6},
		{12, -18, 6}, {-12, -18, 6}, {7, 13, 1}, {1024, 768, 256},
		{1, 1, 1}, {17, 17, 17},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		// g divides both, and is symmetric.
		return x%g == 0 && y%g == 0 && GCD(y, x) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 0}, {4, 6, 12}, {-4, 6, 12}, {3, 7, 21}, {8, 8, 8},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMGCDRelation(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x == 0 || y == 0 {
			return LCM(x, y) == 0
		}
		return LCM(x, y)*GCD(x, y) == Abs(x)*Abs(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDAllLCMAll(t *testing.T) {
	if GCDAll() != 0 {
		t.Error("GCDAll() != 0")
	}
	if GCDAll(12, 18, 30) != 6 {
		t.Error("GCDAll(12,18,30) != 6")
	}
	if LCMAll() != 1 {
		t.Error("LCMAll() != 1")
	}
	if LCMAll(2, 3, 4) != 12 {
		t.Error("LCMAll(2,3,4) != 12")
	}
	if LCMAll(2, 0, 4) != 0 {
		t.Error("LCMAll with zero should be 0")
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.fl {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := CeilDiv(c.a, c.b); got != c.ce {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestFloorCeilDivProperties(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		x, y := int64(a), int64(b)
		fl, ce := FloorDiv(x, y), CeilDiv(x, y)
		// floor <= ceil, differ by at most 1, and bracket the true quotient.
		if fl > ce || ce-fl > 1 {
			return false
		}
		return fl*y <= x == (y > 0) || fl*y >= x == (y < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 3, 1}, {-7, 3, 2}, {0, 3, 0}, {-3, 3, 0}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := Mod(c.a, c.b); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestModIdentity(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b <= 0 {
			return true
		}
		x, y := int64(a), int64(b)
		m := Mod(x, y)
		return m >= 0 && m < y && FloorDiv(x, y)*y+m == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayBijection(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1024; i++ {
		g := Gray(i)
		if seen[g] {
			t.Fatalf("Gray(%d) = %d collides", i, g)
		}
		seen[g] = true
		if GrayInv(g) != i {
			t.Fatalf("GrayInv(Gray(%d)) = %d", i, GrayInv(g))
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// The defining property: consecutive codes differ in exactly one bit.
	for i := uint64(0); i < 4096; i++ {
		if d := GrayDistance(i, i+1); d != 1 {
			t.Fatalf("GrayDistance(%d,%d) = %d, want 1", i, i+1, d)
		}
	}
}

func TestGrayInvProperty(t *testing.T) {
	f := func(x uint32) bool {
		return GrayInv(Gray(uint64(x))) == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPow2AndLog2Ceil(t *testing.T) {
	if Pow2(0) != 1 || Pow2(10) != 1024 {
		t.Fatal("Pow2 basic failure")
	}
	cases := []struct {
		n    int64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int64{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int64{0, -2, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestCheckedMul(t *testing.T) {
	if v, ok := CheckedMul(1<<31, 1<<31); !ok || v != 1<<62 {
		t.Error("CheckedMul in-range failed")
	}
	if _, ok := CheckedMul(1<<32, 1<<32); ok {
		t.Error("CheckedMul overflow not detected")
	}
	if v, ok := CheckedMul(0, math.MaxInt64); !ok || v != 0 {
		t.Error("CheckedMul zero failed")
	}
}

func TestCheckedAdd(t *testing.T) {
	if v, ok := CheckedAdd(1, 2); !ok || v != 3 {
		t.Error("CheckedAdd basic failed")
	}
	if _, ok := CheckedAdd(math.MaxInt64, 1); ok {
		t.Error("CheckedAdd overflow not detected")
	}
	if _, ok := CheckedAdd(math.MinInt64, -1); ok {
		t.Error("CheckedAdd underflow not detected")
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax(3, -1, 7, 0)
	if mn != -1 || mx != 7 {
		t.Fatalf("MinMax = (%d,%d)", mn, mx)
	}
}

func TestSumRange(t *testing.T) {
	cases := []struct{ l, u, want int64 }{
		{1, 10, 55}, {5, 5, 5}, {6, 5, 0}, {-3, 3, 0},
		// The Table I loads: l..1024 sums (×2 gives the t_calc coefficients).
		{513, 1024, 393472}, {897, 1024, 122944}, {993, 1024, 32272},
		{1017, 1024, 8164}, {1023, 1024, 2047},
	}
	for _, c := range cases {
		if got := SumRange(c.l, c.u); got != c.want {
			t.Errorf("SumRange(%d,%d) = %d, want %d", c.l, c.u, got, c.want)
		}
	}
}
