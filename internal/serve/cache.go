package serve

import (
	"container/list"
	"sync"

	loopmap "repro"
	"repro/internal/persist"
)

// planCache is a content-addressed LRU over *base* plans (planned with
// CubeDim = -1, the expensive enumerate→schedule→partition→TIG artifact).
// One cached partitioning serves every cube dimension through Plan.Remap,
// so the mapping phase is never a cache dimension. Capacity is accounted
// in estimated bytes (see planBytes), not entry counts, because plan size
// varies by orders of magnitude across kernels and sizes.
type planCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key   string
	plan  *loopmap.Plan
	bytes int64
	// payload is the canonical request the plan was computed from — the
	// compact durable encoding the persist WAL stores (the plan itself is
	// a pure function of it, so recovery recomputes instead of
	// deserializing megabytes). Nil when persistence is disabled.
	payload []byte
}

func newPlanCache(maxBytes int64) *planCache {
	return &planCache{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached base plan for key, promoting it to most recent.
func (c *planCache) get(key string) (*loopmap.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put inserts a base plan and evicts least-recently-used entries until the
// byte budget holds again; the newest entry itself is never evicted, so a
// single oversized plan still caches (and evicts everything else). It
// returns the number of evictions.
func (c *planCache) put(key string, p *loopmap.Plan, payload []byte) int {
	b := planBytes(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return 0
	}
	el := c.ll.PushFront(&cacheEntry{key: key, plan: p, bytes: b, payload: payload})
	c.items[key] = el
	c.bytes += b
	evicted := 0
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		evicted++
	}
	return evicted
}

// records dumps the live entries as durable records, least-recently-used
// first, so a replay re-inserts them in recency order and the warmest
// entries survive any budget eviction during recovery. Entries without a
// payload (cached before persistence was enabled) are skipped.
func (c *planCache) records() []persist.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]persist.Record, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.payload != nil {
			out = append(out, persist.Record{Key: e.key, Value: e.payload})
		}
	}
	return out
}

// stats returns the current byte and entry footprint.
func (c *planCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.ll.Len()
}

// planBytes estimates the resident size of a base plan: the vertex set and
// its projection dominate, with the partitioning's per-point tables and the
// TIG behind them. The estimate only needs to be proportional — the cache
// budget is a sizing knob, not an allocator.
func planBytes(p *loopmap.Plan) int64 {
	const vecHeader = 24 // slice header per vec.Int
	dims := int64(p.Structure.Nest.Dims)
	perVec := dims*8 + vecHeader

	b := int64(len(p.Structure.V)) * perVec
	b += int64(len(p.Projected.Points)) * (perVec + vecHeader)
	for _, f := range p.Projected.Fibers {
		b += int64(len(f)) * 8
	}
	b += int64(len(p.Partitioning.BlockOf)+len(p.Partitioning.GroupOf)) * 8
	for _, g := range p.Partitioning.Groups {
		b += perVec + int64(len(g.Members)+len(g.Slot))*8 + int64(len(g.Coords))*8
	}
	b += int64(len(p.TIG.Edges))*24 + int64(len(p.TIG.Loads))*8
	return b + 512 // fixed struct overhead
}
