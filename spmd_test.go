package loopmap

// Tests of the code generator: the emitted standalone program must
// compile, run, self-verify (parallel == sequential inside the generated
// program), and produce exactly the same checksum as the in-process
// interpreter — three implementations of the same loop agreeing.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/kernels"
)

const spmdL1Src = `
for i = 0 to 7
for j = 0 to 7
{
  A[i+1, j+1] = A[i+1, j] + B[i, j]
  B[i+1, j]   = A[i, j] * 2 + C
}
`

const spmdIntraSrc = `
for i = 0 to 9
for j = 0 to i
{
  T[i, j] = w[i, j] * 2 - 1
  S[i, j+1] = S[i, j] + T[i, j] * R[i-1, j]
  R[i, j] = R[i-1, j] / 2 + T[i, j]
}
`

// interpChecksum sums the interpreter's trace over points in lexicographic
// order and channels in order — the same order the generated program uses.
func interpChecksum(t *testing.T, name, src string, seed uint64) float64 {
	t.Helper()
	k, err := ParseKernel(name, src, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kernels.RunSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range st.V {
		for _, v := range res.Out[p.Key()] {
			sum += v
		}
	}
	return sum
}

func runGenerated(t *testing.T, srcCode string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(srcCode), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=auto")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s\n--- source ---\n%s", err, out, clip(srcCode))
	}
	return strings.TrimSpace(string(out))
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...(clipped)"
	}
	return s
}

func TestGeneratedSPMDPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs generated programs with the go tool")
	}
	natConv := `
for i = 0 to 11
for j = 0 to 3
{
  y[i, j+1] = y[i, j] + w[j] * x[i-j]
}
`
	natMatmul := `
for i = 0 to 5
for j = 0 to 5
for k = 0 to 5
{
  C[i, j, k] = C[i, j, k-1] + A[i-k, k] * B[k, j]
}
`
	cases := []struct {
		name string
		src  string
		dim  int
		seed uint64
	}{
		{"l1", spmdL1Src, 2, 11},
		{"l1-more-procs", spmdL1Src, 3, 11},
		{"triangular-intra", spmdIntraSrc, 2, 23},
		{"natural-convolution", natConv, 2, 37},
		{"natural-matmul-3d", natMatmul, 3, 53},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, err := GenerateSPMD(c.name, c.src, c.dim, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			out := runGenerated(t, code)
			if !strings.HasPrefix(out, "OK ") {
				t.Fatalf("generated program output: %q", out)
			}
			got, err := strconv.ParseFloat(strings.TrimPrefix(out, "OK "), 64)
			if err != nil {
				t.Fatalf("bad checksum in %q: %v", out, err)
			}
			want := interpChecksum(t, c.name, c.src, c.seed)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("checksum %v != interpreter %v", got, want)
			}
		})
	}
}

func TestGenerateSPMDStructure(t *testing.T) {
	// Fast structural checks without invoking the go tool.
	code, err := GenerateSPMD("l1", spmdL1Src, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package main",
		"func compute(x []int64, in []float64) []float64",
		"func runParallel",
		"func runSequential",
		"go func(p int)",
		"const numProcs = 4",
		"const numChans = 3",
		"v_A :=",
		"v_B :=",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// The placement table covers all 64 points.
	if n := strings.Count(sliceAfter(code, "var procOf = []int{"), ","); n < 60 {
		t.Errorf("placement table looks short (%d commas)", n)
	}
}

func sliceAfter(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	j := strings.Index(s[i:], "}")
	if j < 0 {
		return s[i:]
	}
	return s[i : i+j]
}

func TestGenerateSPMDErrors(t *testing.T) {
	if _, err := GenerateSPMD("bad", "for i = 0 to", 2, 1); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := GenerateSPMD("nodep", "for i = 0 to 3\n{\n A[i] = x[i]\n}", 2, 1); err == nil {
		t.Fatal("dependence-free program accepted")
	}
}

func TestGeneratedProgramGofmtClean(t *testing.T) {
	code, err := GenerateSPMD("l1", spmdL1Src, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("gofmt", "-l", path).CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "" {
		// Show a diff for debugging.
		diff, _ := exec.Command("gofmt", "-d", path).CombinedOutput()
		t.Fatalf("generated code not gofmt-clean:\n%s", diff)
	}
}

func TestGeneratedChecksumStableAcrossDims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs generated programs")
	}
	// The same loop mapped onto different machines must compute the same
	// checksum (the mapping cannot change the numerics).
	var sums []float64
	for _, dim := range []int{0, 1, 2} {
		code, err := GenerateSPMD("stable", spmdL1Src, dim, 77)
		if err != nil {
			t.Fatal(err)
		}
		out := runGenerated(t, code)
		v, err := strconv.ParseFloat(strings.TrimPrefix(out, "OK "), 64)
		if err != nil {
			t.Fatalf("output %q", out)
		}
		sums = append(sums, v)
	}
	sort.Float64s(sums)
	if sums[0] != sums[len(sums)-1] {
		t.Fatalf("checksums differ across machine sizes: %v", sums)
	}
	_ = fmt.Sprint()
}
