package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path and holds
// it to the corrupt-tail contract: replay never panics, stops cleanly at
// the first bad record, accounts for every byte, and the truncate-repair
// that Open performs on the reported good offset yields a log that
// replays identically and extends cleanly.
func FuzzWALReplay(f *testing.F) {
	frame := func(key string, val []byte) []byte {
		return encodeFrame(Record{Key: key, Value: val})
	}
	valid := append([]byte(fileMagic), frame("k1", []byte(`{"kernel":"l1"}`))...)
	valid = append(valid, frame("k2", []byte(`{"kernel":"matmul","size":8}`))...)

	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add([]byte("LOOPMAP9"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn final frame
	f.Add(append(valid[:0:0], valid...)) // full copy for mutation
	flipped := append(valid[:0:0], valid...)
	flipped[len(fileMagic)+10] ^= 0x40 // corrupt payload: CRC mismatch
	f.Add(flipped)
	huge := append([]byte(fileMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge) // absurd length prefix must not allocate 4 GiB

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		recs, goodOff, dropped, tailErr := replayFile(path)

		// Every byte is either replayed or reported dropped.
		if goodOff < 0 || goodOff > int64(len(data)) {
			t.Fatalf("goodOff %d out of [0, %d]", goodOff, len(data))
		}
		hasMagic := len(data) >= len(fileMagic) && string(data[:len(fileMagic)]) == fileMagic
		if hasMagic {
			if goodOff < int64(len(fileMagic)) {
				t.Fatalf("valid header but goodOff %d < header size", goodOff)
			}
			if goodOff+dropped != int64(len(data)) {
				t.Fatalf("byte accounting: goodOff %d + dropped %d != %d", goodOff, dropped, len(data))
			}
			if (tailErr == nil) != (dropped == 0) {
				t.Fatalf("tailErr %v inconsistent with dropped %d", tailErr, dropped)
			}
		} else {
			// No usable header: nothing replays, everything is the tail.
			if len(recs) != 0 || goodOff != 0 || dropped != int64(len(data)) || tailErr == nil {
				t.Fatalf("headerless file: recs=%d goodOff=%d dropped=%d tailErr=%v",
					len(recs), goodOff, dropped, tailErr)
			}
		}

		// Truncating to the good offset must replay the same records with
		// a clean tail — this is exactly the repair Open performs.
		if hasMagic {
			cut := filepath.Join(dir, "cut.log")
			if err := os.WriteFile(cut, data[:goodOff], 0o644); err != nil {
				t.Fatal(err)
			}
			recs2, off2, dropped2, err2 := replayFile(cut)
			if err2 != nil || dropped2 != 0 || off2 != goodOff {
				t.Fatalf("repaired log not clean: off=%d dropped=%d err=%v", off2, dropped2, err2)
			}
			if !reflect.DeepEqual(recs, recs2) {
				t.Fatalf("repaired log replays %d records, original replayed %d", len(recs2), len(recs))
			}
		}

		// Open must always succeed on the damaged directory, surface the
		// same record set, and leave a WAL that accepts appends and
		// replays them back without error.
		store, got, stats, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open on damaged store: %v", err)
		}
		if stats.WALRecords != len(recs) || !reflect.DeepEqual(got, recs) {
			t.Fatalf("Open replayed %d records, replayFile saw %d", stats.WALRecords, len(recs))
		}
		extra := Record{Key: "post-repair", Value: []byte("v")}
		if err := store.Append(extra); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		recs3, _, dropped3, err3 := replayFile(path)
		if err3 != nil || dropped3 != 0 {
			t.Fatalf("log dirty after repair+append: dropped=%d err=%v", dropped3, err3)
		}
		want := append(append([]Record(nil), recs...), extra)
		if !reflect.DeepEqual(recs3, want) {
			t.Fatalf("after repair+append replay has %d records, want %d", len(recs3), len(want))
		}
	})
}
