package report

import (
	"strings"
	"testing"
)

func TestGanttBasic(t *testing.T) {
	spans := []GanttSpan{
		{Proc: 0, Start: 0, End: 5, Glyph: '#'},
		{Proc: 0, Start: 5, End: 10, Glyph: '~'},
		{Proc: 1, Start: 5, End: 10, Glyph: '#'},
	}
	out := Gantt(spans, 2, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "P0") || !strings.HasPrefix(lines[2], "P1") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// P0: first half '#', second half '~'. P1: first half idle '.'.
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "~") {
		t.Fatalf("P0 glyphs missing:\n%s", out)
	}
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("P1 idle missing:\n%s", out)
	}
	// Header carries the makespan.
	if !strings.Contains(lines[0], "10") {
		t.Fatalf("makespan missing from header:\n%s", out)
	}
}

func TestGanttProportions(t *testing.T) {
	spans := []GanttSpan{{Proc: 0, Start: 0, End: 2.5, Glyph: '#'}}
	// Width 40, makespan 10: hash should cover about the first quarter.
	spans = append(spans, GanttSpan{Proc: 1, Start: 0, End: 10, Glyph: '#'})
	out := Gantt(spans, 2, 40)
	row0 := strings.Split(out, "\n")[1]
	hashes := strings.Count(row0, "#")
	if hashes < 8 || hashes > 13 {
		t.Fatalf("quarter-length span drew %d cells of 40:\n%s", hashes, out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if Gantt(nil, 2, 40) != "(empty timeline)\n" {
		t.Fatal("empty timeline rendering wrong")
	}
	if Gantt([]GanttSpan{{Proc: 0, Start: 0, End: 0}}, 0, 40) != "(empty timeline)\n" {
		t.Fatal("zero procs rendering wrong")
	}
}

func TestGanttIgnoresOutOfRangeProc(t *testing.T) {
	spans := []GanttSpan{
		{Proc: 5, Start: 0, End: 10, Glyph: '#'},
		{Proc: 0, Start: 0, End: 10, Glyph: '#'},
	}
	out := Gantt(spans, 1, 20)
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("unexpected rows:\n%s", out)
	}
}
