package loopmap

// Randomized whole-pipeline tests: synthesize uniform loops with random
// dependence matrices and bounds, push them through schedule → projection
// → Algorithm 1 → Algorithm 2 → concurrent execution, and check every
// guarantee the paper proves plus functional equivalence with sequential
// execution. This is the library's strongest correctness evidence beyond
// the paper's own worked examples.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/kernels"
	"repro/internal/loop"
	"repro/internal/vec"
)

// randomUniformLoop synthesizes a random nest + dependence matrix for
// which a valid hyperplane time function exists in the search bound.
func randomUniformLoop(rng *rand.Rand, trial int) (*Kernel, bool) {
	dims := 2 + rng.Intn(2) // 2-D or 3-D
	lo := make([]int64, dims)
	hi := make([]int64, dims)
	for d := 0; d < dims; d++ {
		lo[d] = int64(rng.Intn(3))
		hi[d] = lo[d] + int64(2+rng.Intn(3)) // 3..5 iterations per dim
	}
	nest := loop.NewRect(fmt.Sprintf("fuzz-%d", trial), lo, hi)

	nDeps := 1 + rng.Intn(3)
	seen := map[string]bool{}
	var deps []vec.Int
	for len(deps) < nDeps {
		d := make(vec.Int, dims)
		for i := range d {
			d[i] = int64(rng.Intn(5) - 2)
		}
		if d.IsZero() {
			continue
		}
		if !d.LexPositive() {
			d = d.Scale(-1)
		}
		if seen[d.Key()] {
			continue
		}
		seen[d.Key()] = true
		deps = append(deps, d)
	}

	// Check a valid Π exists; otherwise skip this draw (e.g. dependences
	// (1,0) plus (1,-9ish) combinations may be infeasible in the bound).
	st, err := loop.NewStructure(nest, deps...)
	if err != nil {
		return nil, false
	}
	sch, err := hyperplane.FindOptimal(st, 2)
	if err != nil {
		return nil, false
	}
	k := kernels.Generic(nest.Name, nest, deps, sch.Pi, rng.Uint64())
	return k, true
}

func TestPipelineFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	valid := 0
	for trial := 0; valid < 60; trial++ {
		if trial > 600 {
			t.Fatalf("too few feasible random loops (%d after %d draws)", valid, trial)
		}
		k, ok := randomUniformLoop(rng, trial)
		if !ok {
			continue
		}
		valid++
		dim := rng.Intn(4) // 1..8 processors
		plan, err := NewPlan(k, PlanOptions{CubeDim: dim})
		if err != nil {
			t.Fatalf("%s: %v (deps %v, Π %v)", k.Name, err, k.Deps, k.Pi)
		}

		// Structural guarantees (Lemma 1, Theorem 1, group geometry).
		if err := core.CheckInvariants(plan.Partitioning); err != nil {
			t.Fatalf("%s: %v (deps %v, Π %v)", k.Name, err, k.Deps, k.Pi)
		}
		// Theorem 2 bound on the TIG.
		if err := core.CheckTheorem2(plan.Partitioning, plan.TIG); err != nil {
			t.Fatalf("%s: %v (deps %v, Π %v)", k.Name, err, k.Deps, k.Pi)
		}
		// The dependence analyzer must rederive the synthesized matrix.
		derived := k.Nest.Dependences()
		if len(derived) != len(k.Deps) {
			t.Fatalf("%s: derived %v, stated %v", k.Name, derived, k.Deps)
		}
		// Functional equivalence of the concurrent execution.
		if err := plan.Verify(); err != nil {
			t.Fatalf("%s: %v (deps %v, Π %v, dim %d)", k.Name, err, k.Deps, k.Pi, dim)
		}
	}
}

func TestPipelineFuzzRandomPi(t *testing.T) {
	// Exercise non-optimal time functions: random valid Π with larger
	// coefficients produce larger scale factors s = Π·Π, fractional
	// projections with varied r, and stressed grouping geometry. All
	// invariants and the functional equivalence must still hold.
	rng := rand.New(rand.NewSource(777))
	valid := 0
	for trial := 0; valid < 40; trial++ {
		if trial > 800 {
			t.Fatalf("too few feasible draws (%d)", valid)
		}
		k, ok := randomUniformLoop(rng, trial)
		if !ok {
			continue
		}
		// Draw a random valid Π (not necessarily optimal).
		st, err := k.Structure()
		if err != nil {
			t.Fatal(err)
		}
		pi := make(IntVec, st.Dim())
		found := false
		for attempt := 0; attempt < 50; attempt++ {
			for i := range pi {
				pi[i] = int64(rng.Intn(7) - 3)
			}
			if pi.IsZero() {
				continue
			}
			if hyperplane.Valid(pi, st.D) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		valid++
		plan, err := NewPlan(k, PlanOptions{Pi: pi, CubeDim: rng.Intn(3)})
		if err != nil {
			t.Fatalf("%s Π=%v: %v", k.Name, pi, err)
		}
		if err := core.CheckInvariants(plan.Partitioning); err != nil {
			t.Fatalf("%s Π=%v deps=%v: %v", k.Name, pi, k.Deps, err)
		}
		if err := core.CheckTheorem2(plan.Partitioning, plan.TIG); err != nil {
			t.Fatalf("%s Π=%v deps=%v: %v", k.Name, pi, k.Deps, err)
		}
		// The kernel's recorded Π drives the executor's point ordering;
		// align it with the plan's Π before verifying.
		k.Pi = pi
		if err := plan.Verify(); err != nil {
			t.Fatalf("%s Π=%v deps=%v: %v", k.Name, pi, k.Deps, err)
		}
	}
}

func TestPipelineFuzzSimulation(t *testing.T) {
	// The simulator must accept every feasible random loop and produce a
	// makespan at least as large as the critical computation.
	rng := rand.New(rand.NewSource(42))
	valid := 0
	for trial := 0; valid < 30; trial++ {
		if trial > 300 {
			t.Fatalf("too few feasible random loops")
		}
		k, ok := randomUniformLoop(rng, trial)
		if !ok {
			continue
		}
		valid++
		plan, err := NewPlan(k, PlanOptions{CubeDim: rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		params := Params{TCalc: 1 + float64(rng.Intn(5)), TStart: float64(rng.Intn(20)), TComm: float64(rng.Intn(5))}
		s, err := plan.Simulate(params, SimOptions{Aggregate: rng.Intn(2) == 0})
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan < float64(s.MaxProcOps)*params.TCalc {
			t.Fatalf("%s: makespan %v below critical compute %v", k.Name, s.Makespan, float64(s.MaxProcOps)*params.TCalc)
		}
		// Makespan can never beat the schedule's critical path: the number
		// of steps times one point's compute time.
		minPath := float64(plan.Schedule.Steps()) * float64(k.Nest.OpsPerIteration()) * params.TCalc
		if s.Makespan+1e-9 < minPath {
			t.Fatalf("%s: makespan %v below schedule critical path %v", k.Name, s.Makespan, minPath)
		}
	}
}

func TestPipelineFuzzDeterminism(t *testing.T) {
	// The same seed must reproduce the identical plan and trace.
	build := func() (*Plan, *ExecResult) {
		rng := rand.New(rand.NewSource(7))
		var k *Kernel
		for trial := 0; ; trial++ {
			kk, ok := randomUniformLoop(rng, trial)
			if ok {
				k = kk
				break
			}
		}
		plan, err := NewPlan(k, PlanOptions{CubeDim: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := plan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return plan, res
	}
	p1, r1 := build()
	p2, r2 := build()
	if p1.Partitioning.NumBlocks() != p2.Partitioning.NumBlocks() {
		t.Fatal("plans differ across identical seeds")
	}
	if !r1.Equal(r2) {
		t.Fatal("traces differ across identical seeds")
	}
}
