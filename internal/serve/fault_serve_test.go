package serve

// Tests for the daemon's robustness surface: panic-recovery middleware,
// admission-gate load shedding with Retry-After, and the /v1/simulate
// fault-injection and degraded-cube knobs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPanicMiddlewareRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	h := s.instrument("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/plan", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var ae apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil || ae.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: body %q, want a 500 error envelope", rec.Body)
	}
	if got := s.Metrics().Panics; got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The recovered panic is observable in /metrics, and the server keeps
	// serving normal traffic afterwards.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), "loopmapd_panics_total 1") {
		t.Fatalf("/metrics missing loopmapd_panics_total 1:\n%s", out)
	}
	if pr := planBody(t, ts.URL+"/v1/plan", `{"kernel": "l1", "size": 8, "cube_dim": 3}`); pr.Blocks == 0 {
		t.Fatal("server stopped planning after a recovered panic")
	}

	// A panic after the response started cannot be rewritten, but is still
	// counted and recorded as a 500 in metrics.
	late := s.instrument("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "partial")
		panic("late boom")
	})
	rec = httptest.NewRecorder()
	late(rec, httptest.NewRequest("POST", "/v1/plan", strings.NewReader("{}")))
	if got := rec.Body.String(); got != "partial" {
		t.Fatalf("late panic rewrote a started response: %q", got)
	}
	if got := s.Metrics().Panics; got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, AcquireTimeout: 20 * time.Millisecond})

	// Saturate the single admission slot from outside the request path.
	if err := s.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	body := `{"kernel": "l1", "size": 8, "cube_dim": 3}`
	resp, out := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate: status %s, want 503; body %s", resp.Status, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After = %q, want \"1\"", ra)
	}
	var ae apiError
	if err := json.Unmarshal(out, &ae); err != nil || ae.Code != http.StatusServiceUnavailable {
		t.Fatalf("503 envelope: %s", out)
	}

	// Releasing the slot readmits the identical retry.
	s.gate.Release()
	planBody(t, ts.URL+"/v1/plan", body)

	// Cache hits bypass the gate entirely: even a saturated daemon serves
	// already-computed plans.
	if err := s.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Release()
	if pr := planBody(t, ts.URL+"/v1/plan", body); pr.Cache != CacheHit {
		t.Fatalf("cache = %q, want %q through a saturated gate", pr.Cache, CacheHit)
	}
}

func simulateBody(t *testing.T, url, body string) SimulateResponse {
	t.Helper()
	resp, out := postJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s: %s", url, resp.Status, out)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatalf("decode: %v: %s", err, out)
	}
	return sr
}

func TestSimulateWithFaultSchedule(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := simulateBody(t, ts.URL+"/v1/simulate",
		`{"kernel": "matvec", "size": 16, "cube_dim": 3, "engine": "block"}`)
	if base.Crashes != 0 || base.Retransmits != 0 || base.CheckpointTime != 0 {
		t.Fatalf("fault-free run reports fault accounting: %+v", base)
	}

	body := fmt.Sprintf(`{"kernel": "matvec", "size": 16, "cube_dim": 3, "engine": "block",
		"faults": {"seed": 7, "loss_prob": 0.5,
			"crashes": [{"node": 1, "t": %g}],
			"checkpoint_steps": 2, "checkpoint_cost": 5, "restart_cost": 10}}`,
		base.Makespan/2)
	first := simulateBody(t, ts.URL+"/v1/simulate", body)
	if first.Makespan < base.Makespan {
		t.Fatalf("faults decreased makespan: %v < %v", first.Makespan, base.Makespan)
	}
	// ReplayTime is legitimately zero when the crash lands right after a
	// checkpoint, so only the always-positive counters are asserted.
	if first.Crashes != 1 || first.Retransmits == 0 || first.CheckpointTime == 0 {
		t.Fatalf("fault accounting missing: %+v", first)
	}
	// Fixed seed: the replayed request is bit-identical.
	second := simulateBody(t, ts.URL+"/v1/simulate", body)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same fault schedule diverged:\n%+v\n%+v", first, second)
	}
}

func TestSimulateDegradedCube(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := simulateBody(t, ts.URL+"/v1/simulate",
		`{"kernel": "matvec", "size": 16, "cube_dim": 3, "engine": "block"}`)
	if base.Degraded != nil {
		t.Fatalf("intact run reports degradation: %+v", base.Degraded)
	}

	got := simulateBody(t, ts.URL+"/v1/simulate",
		`{"kernel": "matvec", "size": 16, "cube_dim": 3, "engine": "block", "failed_nodes": [0, 5]}`)
	d := got.Degraded
	if d == nil {
		t.Fatal("failed_nodes run missing degraded info")
	}
	if len(d.FailedNodes) != 2 || d.MigratedBlocks == 0 || d.MaxMigrationHops != 1 {
		t.Fatalf("degraded info: %+v", d)
	}
	if d.MakespanInflation <= 0 {
		t.Fatalf("makespan inflation %v not computed", d.MakespanInflation)
	}
}

func TestSimulateFaultBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"loss prob out of range",
			`{"kernel": "matvec", "size": 8, "faults": {"loss_prob": 7}}`},
		{"crash node out of range",
			`{"kernel": "matvec", "size": 8, "cube_dim": 2, "faults": {"crashes": [{"node": 99, "t": 1}]}}`},
		{"link failure without mapping",
			`{"kernel": "matvec", "size": 8, "cube_dim": -1, "faults": {"link_failures": [{"a": 0, "b": 1, "t": 0}]}}`},
		{"contention without mapping",
			`{"kernel": "matvec", "size": 8, "cube_dim": -1, "contention": true}`},
		{"failed nodes without mapping",
			`{"kernel": "matvec", "size": 8, "cube_dim": -1, "failed_nodes": [0]}`},
		{"all nodes failed",
			`{"kernel": "matvec", "size": 8, "cube_dim": 1, "failed_nodes": [0, 1]}`},
		{"failed node out of range",
			`{"kernel": "matvec", "size": 8, "cube_dim": 2, "failed_nodes": [64]}`},
	}
	for _, c := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/simulate", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400; body %s", c.name, resp.Status, out)
		}
	}
}
