// Package trace exports simulator timelines in the Chrome trace-event
// format (the JSON array consumed by chrome://tracing and Perfetto), so a
// simulated parallel execution can be inspected with standard tooling —
// one track per processor, compute and send phases as complete events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// event is one Chrome trace "complete" event.
type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat"`
}

// metadata names a thread track.
type metadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// Chrome writes the spans of a simulation as a Chrome trace JSON array.
// Simulated time units map one-to-one onto trace microseconds.
func Chrome(w io.Writer, stats *sim.Stats) error {
	if stats == nil {
		return fmt.Errorf("trace: nil stats")
	}
	var items []any
	for p := range stats.Busy {
		items = append(items, metadata{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("processor %d", p)},
		})
	}
	for _, s := range stats.Spans {
		name, cat := "compute", "compute"
		if s.Kind == sim.SpanSend {
			name, cat = "send", "comm"
		}
		items = append(items, event{
			Name: name, Ph: "X", Ts: s.Start, Dur: s.End - s.Start,
			Pid: 0, Tid: s.Proc, Cat: cat,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(items)
}
