package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/project"
)

// buildCase runs the full pipeline for a kernel and returns the pieces both
// engines consume.
func buildCase(t *testing.T, name string, size int64, cubeDim int) (*kernels.Kernel, Assignment, hyperplane.Schedule, *core.Partitioning) {
	t.Helper()
	ctor, ok := kernels.Registry[name]
	if !ok {
		t.Fatalf("unknown kernel %q", name)
	}
	k := ctor(size)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := hyperplane.NewSchedule(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, sch.Pi)
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.Partition(ps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var a Assignment
	if cubeDim >= 0 {
		m, err := mapping.MapPartitioning(part, cubeDim, mapping.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a = FromMapping(part, m)
	} else {
		a = BlocksAsProcs(part)
	}
	return k, a, sch, part
}

// assertStatsEqual requires bit-identical accounting from the two engines.
func assertStatsEqual(t *testing.T, label string, point, block *Stats) {
	t.Helper()
	if point.Makespan != block.Makespan {
		t.Errorf("%s: makespan point=%v block=%v", label, point.Makespan, block.Makespan)
	}
	if point.Messages != block.Messages || point.Words != block.Words {
		t.Errorf("%s: messages/words point=%d/%d block=%d/%d",
			label, point.Messages, point.Words, block.Messages, block.Words)
	}
	if point.MaxProcOps != block.MaxProcOps {
		t.Errorf("%s: max ops point=%d block=%d", label, point.MaxProcOps, block.MaxProcOps)
	}
	for p := range point.SendWords {
		if point.SendWords[p] != block.SendWords[p] {
			t.Errorf("%s: proc %d send words point=%d block=%d", label, p, point.SendWords[p], block.SendWords[p])
		}
		if point.RecvWords[p] != block.RecvWords[p] {
			t.Errorf("%s: proc %d recv words point=%d block=%d", label, p, point.RecvWords[p], block.RecvWords[p])
		}
		if point.Busy[p] != block.Busy[p] {
			t.Errorf("%s: proc %d busy point=%v block=%v", label, p, point.Busy[p], block.Busy[p])
		}
		if point.SendTime[p] != block.SendTime[p] {
			t.Errorf("%s: proc %d send time point=%v block=%v", label, p, point.SendTime[p], block.SendTime[p])
		}
		if point.ProcOps[p] != block.ProcOps[p] {
			t.Errorf("%s: proc %d ops point=%d block=%d", label, p, point.ProcOps[p], block.ProcOps[p])
		}
	}
}

// TestBlockEngineMatchesPointEngineAllKernels asserts the acceptance
// criterion: on every built-in kernel, with and without mapping, the
// block-level engine reproduces the point-level engine's makespan and
// per-processor send/recv word counts exactly.
func TestBlockEngineMatchesPointEngineAllKernels(t *testing.T) {
	params := machine.Era1991()
	for _, name := range kernels.Names() {
		for _, cubeDim := range []int{-1, 2, 3} {
			label := fmt.Sprintf("%s/dim=%d", name, cubeDim)
			k, a, sch, _ := buildCase(t, name, 6, cubeDim)
			st, err := k.Structure()
			if err != nil {
				t.Fatal(err)
			}
			point, err := Simulate(st, sch, a, params, Options{})
			if err != nil {
				t.Fatalf("%s: point engine: %v", label, err)
			}
			block, err := SimulateBlockLevel(st, sch, a, params, Options{})
			if err != nil {
				t.Fatalf("%s: block engine: %v", label, err)
			}
			assertStatsEqual(t, label, point, block)
		}
	}
}

// TestBlockEngineMatchesPointEngineOptions exercises the option matrix —
// aggregation, timeline recording, link contention, unit params — on a
// mapped kernel where messages genuinely contend for links.
func TestBlockEngineMatchesPointEngineOptions(t *testing.T) {
	for _, name := range []string{"matvec", "matmul", "stencil"} {
		k, a, sch, _ := buildCase(t, name, 8, 2)
		st, err := k.Structure()
		if err != nil {
			t.Fatal(err)
		}
		for _, params := range []machine.Params{machine.Era1991(), machine.Unit(), {TCalc: 1, TStart: 10, TComm: 5, THop: 2}} {
			for _, opt := range []Options{
				{},
				{Aggregate: true},
				{Timeline: true},
				{LinkContention: true},
				{Aggregate: true, LinkContention: true, Timeline: true},
			} {
				label := fmt.Sprintf("%s/%+v/%+v", name, params, opt)
				point, err := Simulate(st, sch, a, params, opt)
				if err != nil {
					t.Fatalf("%s: point engine: %v", label, err)
				}
				block, err := SimulateBlockLevel(st, sch, a, params, opt)
				if err != nil {
					t.Fatalf("%s: block engine: %v", label, err)
				}
				assertStatsEqual(t, label, point, block)
				if opt.Timeline {
					if len(point.Spans) != len(block.Spans) {
						t.Fatalf("%s: span count point=%d block=%d", label, len(point.Spans), len(block.Spans))
					}
				}
			}
		}
	}
}

// TestBlockEngineMergeFactor checks the engine stays exact when Theorem 1
// is deliberately relaxed (MergeFactor > 1 puts same-step points in one
// block) — the engine orders slots by (step, vertex), not by block, so
// coarsened partitionings remain bit-identical too.
func TestBlockEngineMergeFactor(t *testing.T) {
	ctor := kernels.Registry["matvec"]
	k := ctor(16)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := hyperplane.NewSchedule(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, sch.Pi)
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.Partition(ps, core.Options{MergeFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := BlocksAsProcs(part)
	point, err := Simulate(st, sch, a, machine.Era1991(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	block, err := SimulateBlockLevel(st, sch, a, machine.Era1991(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "matvec/merge=4", point, block)
}

// TestEngineDispatch checks that Options.Engine routes Simulate to the
// block-level engine.
func TestEngineDispatch(t *testing.T) {
	k, a, sch, _ := buildCase(t, "matvec", 8, 2)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	viaOpt, err := Simulate(st, sch, a, machine.Era1991(), Options{Engine: EngineBlock})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SimulateBlockLevel(st, sch, a, machine.Era1991(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "dispatch", viaOpt, direct)
}

// TestCriticalProcCached checks the cached critical processor agrees with a
// fresh scan and that the dependent accessors use it.
func TestCriticalProcCached(t *testing.T) {
	k, a, sch, _ := buildCase(t, "matvec", 8, 2)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Simulate(st, sch, a, machine.Era1991(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := 0
	for p := range s.ProcOps {
		if s.ProcOps[p] > s.ProcOps[scan] {
			scan = p
		}
	}
	if got := s.CriticalProc(); got != scan {
		t.Fatalf("CriticalProc() = %d, scan = %d", got, scan)
	}
	if got := s.CriticalProc(); got != scan {
		t.Fatalf("cached CriticalProc() = %d, scan = %d", got, scan)
	}
	if want := s.SendWords[scan]; s.CriticalCommWords() != want {
		t.Fatalf("CriticalCommWords() = %d, want %d", s.CriticalCommWords(), want)
	}
	if want := s.SendWords[scan] + s.RecvWords[scan]; s.CriticalInOutWords() != want {
		t.Fatalf("CriticalInOutWords() = %d, want %d", s.CriticalInOutWords(), want)
	}
}
