package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newFailingServer starts an always-503 endpoint that counts attempts
// into calls and returns its base URL.
func newFailingServer(t *testing.T, calls *atomic.Int64) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestHalfOpenProbeNeverHedges: the single half-open probe must be
// exactly one request on the wire, even on a hedgeable call with a
// HedgeDelay the slow probe exceeds — a duplicate would break the
// breaker's one-probe contract and double load on a recovering daemon.
func TestHalfOpenProbeNeverHedges(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		// The probe answers well past HedgeDelay: a hedge, if launched,
		// would land as an extra server call.
		time.Sleep(80 * time.Millisecond)
		fmt.Fprint(w, `{"kernel": "l1"}`)
	})
	c := newTestClient(t, h, func(cfg *Config) {
		cfg.MaxRetries = 0
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = time.Nanosecond // next call is the probe
		cfg.HedgeDelay = 10 * time.Millisecond
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Plan(ctx, planReq()); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if st := c.Stats(); st.BreakerState != BreakerOpen {
		t.Fatalf("breaker not open after 3 failures: %+v", st)
	}
	before := calls.Load()
	if _, err := c.Plan(ctx, planReq()); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if got := calls.Load() - before; got != 1 {
		t.Fatalf("half-open probe made %d server calls, want exactly 1", got)
	}
	st := c.Stats()
	if st.Hedges != 0 {
		t.Fatalf("probe hedged %d times, want 0", st.Hedges)
	}
	if st.BreakerState != BreakerClosed {
		t.Fatalf("breaker after successful probe: %+v", st)
	}

	// With the breaker closed again, hedging resumes as configured.
	before = calls.Load()
	if _, err := c.Plan(ctx, planReq()); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if got := c.Stats().Hedges; got < 1 {
		t.Fatalf("closed-breaker slow call hedged %d times, want >= 1", got)
	}
	_ = before
}

// TestAttemptBudgetBoundsRetries: a context budget caps wire attempts
// below what MaxRetries alone would allow, and exhaustion is terminal.
func TestAttemptBudgetBoundsRetries(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	c := newTestClient(t, h, func(cfg *Config) {
		cfg.MaxRetries = 10
		cfg.BreakerThreshold = 100 // keep the breaker out of the way
	})
	ctx := WithAttemptBudget(context.Background(), 2)
	_, err := c.Plan(ctx, planReq())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want exactly the budget (2)", got)
	}
	if st := c.Stats(); st.BudgetExhausted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMultiRetryBudgetAcrossEndpoints: one logical Multi call spends at
// most RetryBudget attempts across ALL endpoints — failover does not
// reset the meter.
func TestMultiRetryBudgetAcrossEndpoints(t *testing.T) {
	var calls atomic.Int64
	endpoints := make([]string, 3)
	for i := range endpoints {
		ts := newFailingServer(t, &calls)
		endpoints[i] = ts
	}
	m, err := NewMulti(MultiConfig{
		Endpoints: endpoints,
		Config: Config{
			MaxRetries:       10,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       2 * time.Millisecond,
			BreakerThreshold: 100,
		},
		RetryBudget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Plan(context.Background(), planReq())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("cluster saw %d attempts, want exactly RetryBudget (4)", got)
	}
	st := m.Stats()
	if st.BudgetExhausted < 1 {
		t.Fatalf("aggregate BudgetExhausted = %d, want >= 1", st.BudgetExhausted)
	}
	if st.Attempts != 4 {
		t.Fatalf("aggregate attempts = %d, want 4", st.Attempts)
	}
}

// TestMultiRetryBudgetDisabled: a negative RetryBudget turns the cap
// off; every endpoint's full retry loop runs.
func TestMultiRetryBudgetDisabled(t *testing.T) {
	var calls atomic.Int64
	ts := newFailingServer(t, &calls)
	m, err := NewMulti(MultiConfig{
		Endpoints: []string{ts},
		Config: Config{
			MaxRetries:       3,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       2 * time.Millisecond,
			BreakerThreshold: 100,
		},
		RetryBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan(context.Background(), planReq()); err == nil {
		t.Fatal("all-503 endpoint unexpectedly succeeded")
	}
	if got := calls.Load(); got != 4 { // 1 first try + MaxRetries
		t.Fatalf("endpoint saw %d attempts, want 4 (no budget cap)", got)
	}
}
