package client

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestMultiElasticMembershipRace drives concurrent plan traffic through
// a Multi while the cluster changes shape underneath it: a fourth shard
// joins dynamically mid-load, then an established shard dies (its
// listener closes, the in-process stand-in for SIGKILL). The contract:
// no request is lost at any point, and every surviving shard converges
// on the same bumped map epoch. Run under -race this also exercises the
// concurrent map adoption, epoch gossip, and replication paths.
func TestMultiElasticMembershipRace(t *testing.T) {
	const token = "elastic-race-token"
	const n = 3

	srvs := make([]*serve.Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		srvs[i] = serve.New(serve.Config{AdminToken: token})
		tss[i] = httptest.NewServer(srvs[i].Handler())
		urls[i] = tss[i].URL
		t.Cleanup(tss[i].Close)
	}
	for i, s := range srvs {
		if err := s.EnableCluster(serve.ClusterOptions{
			SelfID:        i,
			Peers:         urls,
			ProbeInterval: 50 * time.Millisecond,
			FailThreshold: 2,
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
	}

	m, err := NewMulti(MultiConfig{
		Endpoints: urls,
		Config: Config{
			MaxRetries:       2,
			BaseBackoff:      10 * time.Millisecond,
			MaxBackoff:       100 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm one key so the client has a shard map before the chaos.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: 4}); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Continuous traffic across a fixed key population. Every error is a
	// lost request — the thing the membership machinery must not cause.
	stop := make(chan struct{})
	var lost atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			sizes := []int64{4, 5, 6, 7, 8, 9, 10, 11}
			for i := off; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := m.Plan(rctx, &PlanRequest{Kernel: "l1", Size: sizes[i%len(sizes)]})
				rcancel()
				if err != nil {
					lost.Add(1)
					t.Errorf("request lost during membership change: %v", err)
					return
				}
				served.Add(1)
			}
		}(w)
	}

	// A fourth shard joins while the load runs.
	joiner := serve.New(serve.Config{AdminToken: token})
	jts := httptest.NewServer(joiner.Handler())
	t.Cleanup(jts.Close)
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.JoinCluster(ctx, serve.JoinOptions{
		SeedURL:       urls[0],
		AdvertiseURL:  jts.URL,
		AdminToken:    token,
		ProbeInterval: 50 * time.Millisecond,
		FailThreshold: 2,
	}); err != nil {
		t.Fatalf("join under load: %v", err)
	}

	// Let post-join traffic reach the grown cluster, then kill an
	// established shard (not the seed, not the joiner).
	time.Sleep(200 * time.Millisecond)
	const victim = 2
	tss[victim].Close()

	// Survivors must notice the death and keep serving; give the probes
	// a few rounds under load before stopping traffic.
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if lost.Load() > 0 {
		t.Fatalf("%d requests lost (served %d)", lost.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic flowed during the membership change")
	}

	// Every survivor converges on one epoch, with the joiner an active
	// member of everyone's map.
	alive := []*serve.Server{srvs[0], srvs[1], joiner}
	deadline := time.Now().Add(10 * time.Second)
	for {
		epochs := make(map[uint64]bool)
		joinerUp := true
		for _, s := range alive {
			mem := s.ClusterMembership()
			epochs[mem.Epoch()] = true
			found := false
			for _, sh := range mem.Map().Shards {
				if sh.URL == jts.URL && sh.State == "up" {
					found = true
				}
			}
			if !found {
				joinerUp = false
			}
		}
		if len(epochs) == 1 && joinerUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: epochs %v, joiner up everywhere: %t", keys(epochs), joinerUp)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The client learned the new shape from ordinary traffic: its view
	// refreshed on epoch mismatches, not only after failovers.
	if st := m.Stats(); st.EpochRefreshes == 0 && st.MapRefreshes == 0 {
		t.Fatalf("client never refreshed its shard map: %+v", st)
	}
}

func keys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMultiEpochRefreshOnJoin asserts the satellite contract directly:
// a Multi that has a settled view refreshes it when a response carries a
// newer epoch, and starts routing to a shard it had never been told
// about.
func TestMultiEpochRefreshOnJoin(t *testing.T) {
	const token = "epoch-refresh-token"
	const n = 2
	srvs := make([]*serve.Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		srvs[i] = serve.New(serve.Config{AdminToken: token})
		tss[i] = httptest.NewServer(srvs[i].Handler())
		urls[i] = tss[i].URL
		t.Cleanup(tss[i].Close)
	}
	for i, s := range srvs {
		if err := s.EnableCluster(serve.ClusterOptions{
			SelfID:        i,
			Peers:         urls,
			ProbeInterval: 25 * time.Millisecond,
			FailThreshold: 2,
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
	}

	m, err := NewMulti(MultiConfig{Endpoints: urls})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: 4}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	before := m.Stats()

	joiner := serve.New(serve.Config{AdminToken: token})
	jts := httptest.NewServer(joiner.Handler())
	t.Cleanup(jts.Close)
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.JoinCluster(ctx, serve.JoinOptions{
		SeedURL:       urls[0],
		AdvertiseURL:  jts.URL,
		AdminToken:    token,
		ProbeInterval: 25 * time.Millisecond,
		FailThreshold: 2,
	}); err != nil {
		t.Fatalf("join: %v", err)
	}

	// Ordinary traffic against the old members carries the bumped epoch;
	// the client must refresh without any failover and start routing
	// keys owned by the joiner straight to it.
	deadline := time.Now().Add(10 * time.Second)
	routed := false
	for !routed {
		for _, size := range []int64{4, 5, 6, 7, 8, 9, 10, 11, 12, 13} {
			resp, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: size})
			if err != nil {
				t.Fatalf("post-join plan: %v", err)
			}
			if resp.Cluster != nil && resp.Cluster.Shard == 2 {
				routed = true
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no request ever reached the joined shard")
		}
	}
	st := m.Stats()
	if st.EpochRefreshes <= before.EpochRefreshes {
		t.Fatalf("epoch refreshes did not advance: before %d, after %d", before.EpochRefreshes, st.EpochRefreshes)
	}
	if st.Failovers != before.Failovers {
		t.Fatalf("refresh required a failover: %+v", st)
	}
}
