package loopmap

// Smoke tests for the command-line tools: every cmd binary is run through
// `go run` on a small workload and its output checked for the signature
// lines. These double as end-to-end tests of the flag plumbing.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "." // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCmdLooppartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	out := runCmd(t, "./cmd/looppart", "-kernel", "matmul", "-size", "4", "-groups")
	for _, want := range []string{
		"17 blocks",
		"Theorem 2 bound 4",
		"coordinate method: not applicable",
		"invariants: Lemma 1 / Theorem 1 / Theorem 2 verified",
		"G16",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("looppart output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdLooppartDSLAndEmit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	dir := t.TempDir()
	loopFile := filepath.Join(dir, "conv.loop")
	src := "for i = 0 to 7\nfor j = 0 to 3\n{\n y[i, j+1] = y[i, j] + w[j] * x[i-j]\n}\n"
	if err := os.WriteFile(loopFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "./cmd/looppart", "-file", loopFile, "-grid")
	if !strings.Contains(out, "invariants: Lemma 1 / Theorem 1 / Theorem 2 verified") {
		t.Errorf("looppart -file output:\n%s", out)
	}
	// Emit a parallel program and run it.
	par := filepath.Join(dir, "par.go")
	out = runCmd(t, "./cmd/looppart", "-file", loopFile, "-emit", par, "-emitdim", "2")
	if !strings.Contains(out, "wrote") {
		t.Errorf("emit output:\n%s", out)
	}
	res := runCmd(t, par)
	if !strings.HasPrefix(strings.TrimSpace(res), "OK ") {
		t.Errorf("emitted program output: %q", res)
	}
}

func TestCmdHypermapSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	out := runCmd(t, "./cmd/hypermap", "-kernel", "matvec", "-size", "16", "-dim", "2", "-verify", "-gantt")
	for _, want := range []string{
		"mapping comparison:",
		"gray (Algorithm 2)",
		"simulation:",
		"timeline ('#' compute, '~' send, '.' idle):",
		"verify: concurrent execution matches the sequential reference",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hypermap output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	out := runCmd(t, "./cmd/experiments", "-e", "fig3")
	if strings.Contains(out, "DIFFERS") {
		t.Errorf("experiments reported a divergence:\n%s", out)
	}
	for _, want := range []string{"projected points", "paper=7", "paper=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdExperimentsAllMatchPaper runs the complete reproduction — every
// table and figure, including the million-iteration Table I cross-check —
// and asserts not a single paper-vs-measured line diverges.
func TestCmdExperimentsAllMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite via the go tool")
	}
	out := runCmd(t, "./cmd/experiments", "-e", "all")
	if strings.Contains(out, "DIFFERS") {
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, "DIFFERS") {
				t.Errorf("divergence: %s", strings.TrimSpace(l))
			}
		}
	}
	// All experiments actually ran.
	for _, header := range []string{
		"=== fig1:", "=== fig3:", "=== fig5:", "=== fig7:", "=== fig8:",
		"=== fig9:", "=== table1:", "=== ablate:", "=== mapablate:",
		"=== grain:", "=== mesh:", "=== granularity:", "=== verify:",
		"=== faults:",
	} {
		if !strings.Contains(out, header) {
			t.Errorf("experiment missing from -e all: %s", header)
		}
	}
}

func TestCmdSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	out := runCmd(t, "./cmd/sweep", "-s", "grain")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 10 {
		t.Fatalf("sweep produced %d lines", len(lines))
	}
	if lines[0] != "M,N,comm_comp_ratio" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 2 {
			t.Errorf("malformed CSV row %q", l)
		}
	}
}

func TestCmdLoopmapdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cmds via the go tool")
	}
	out := runCmd(t, "./cmd/loopmapd", "-smoke")
	for _, want := range []string{
		"POST /v1/plan -> 200 OK",
		`"kernel":"l1"`,
		`"cache":"miss"`,
		`"procs":8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("loopmapd smoke output missing %q:\n%s", want, out)
		}
	}
}
