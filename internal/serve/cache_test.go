package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	loopmap "repro"
)

func testPlan(t *testing.T, size int64) *loopmap.Plan {
	t.Helper()
	k, err := loopmap.LookupKernel("l1", size)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loopmap.NewPlan(k, loopmap.PlanOptions{CubeDim: -1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanCacheLRUOrder(t *testing.T) {
	pa, pb, pc := testPlan(t, 4), testPlan(t, 5), testPlan(t, 6)
	// Budget for exactly two of these plans.
	budget := planBytes(pa) + planBytes(pb) + planBytes(pc)/2
	c := newPlanCache(budget)

	c.put("a", pa, nil)
	c.put("b", pb, nil)
	// Touch a so b becomes the eviction candidate.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if ev := c.put("c", pc, nil); ev == 0 {
		t.Fatal("inserting c should evict")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be cached (newest)")
	}
}

func TestPlanCacheNewestNeverEvicted(t *testing.T) {
	p := testPlan(t, 6)
	c := newPlanCache(1) // smaller than any plan
	c.put("big", p, nil)
	if _, ok := c.get("big"); !ok {
		t.Fatal("an oversized newest entry must still cache")
	}
	if _, n := c.stats(); n != 1 {
		t.Fatalf("entries = %d, want 1", n)
	}
}

func TestPlanCacheDuplicatePut(t *testing.T) {
	p := testPlan(t, 4)
	c := newPlanCache(1 << 20)
	c.put("k", p, nil)
	c.put("k", p, nil)
	b1, n := c.stats()
	if n != 1 {
		t.Fatalf("entries = %d, want 1 after duplicate put", n)
	}
	if b1 != planBytes(p) {
		t.Fatalf("bytes = %d, want %d (no double counting)", b1, planBytes(p))
	}
}

func TestFlightGroupDeduplicates(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	var once sync.Once
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.do(context.Background(), "k", func() (any, error) {
				calls.Add(1)
				once.Do(func() { close(started) })
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("v=%v err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	<-started
	// Give every follower time to reach do() and block on the leader's
	// completion before releasing it (same approach as x/sync's tests).
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("shared = %d, want %d", sharedCount.Load(), n-1)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, err, _ := g.do(context.Background(), "k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A failed flight is not cached: the next call runs again.
	v, err, _ := g.do(context.Background(), "k", func() (any, error) { return 1, nil })
	if err != nil || v.(int) != 1 {
		t.Fatalf("retry after failure: v=%v err=%v", v, err)
	}
}
