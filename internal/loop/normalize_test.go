package loop

import (
	"testing"

	"repro/internal/vec"
)

func TestNormalizeBasic(t *testing.T) {
	// for i = 2 to 10 by 2; for j = 1 to 7 by 3 — 5×3 iterations.
	s := &SteppedNest{
		Name:  "stepped",
		Lower: []int64{2, 1},
		Upper: []int64{10, 7},
		Step:  []int64{2, 3},
		Stmts: []Stmt{{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(2, 0)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(0, -3)}},
		}},
	}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 15 {
		t.Fatalf("size = %d, want 15", n.Size())
	}
	// Offsets divide by the strides: (2,0) -> (1,0), (0,-3) -> (0,-1).
	if !n.Stmts[0].Writes[0].Offset.Equal(vec.NewInt(1, 0)) {
		t.Fatalf("write offset = %v", n.Stmts[0].Writes[0].Offset)
	}
	deps := n.Dependences()
	if len(deps) != 1 || !deps[0].Equal(vec.NewInt(1, 1)) {
		t.Fatalf("deps = %v", deps)
	}
}

func TestDenormalizeRoundTrip(t *testing.T) {
	s := &SteppedNest{
		Name:  "rt",
		Lower: []int64{2, 1},
		Upper: []int64{10, 7},
		Step:  []int64{2, 3},
		Stmts: []Stmt{{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(0, 0)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(-2, 0)}},
		}},
	}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Every normalized point maps back into the stepped lattice.
	n.ForEach(func(p vec.Int) {
		orig := s.Denormalize(p)
		for j := range orig {
			if orig[j] < s.Lower[j] || orig[j] > s.Upper[j] {
				t.Fatalf("denormalized %v -> %v out of bounds", p, orig)
			}
			if (orig[j]-s.Lower[j])%s.Step[j] != 0 {
				t.Fatalf("denormalized %v -> %v off the stride lattice", p, orig)
			}
		}
	})
	if got := s.Denormalize(vec.NewInt(0, 0)); !got.Equal(vec.NewInt(2, 1)) {
		t.Fatalf("Denormalize(0,0) = %v", got)
	}
	if got := s.Denormalize(vec.NewInt(4, 2)); !got.Equal(vec.NewInt(10, 7)) {
		t.Fatalf("Denormalize(4,2) = %v", got)
	}
}

func TestNormalizeRejectsBadInput(t *testing.T) {
	bad := &SteppedNest{Name: "b", Lower: []int64{0}, Upper: []int64{4}, Step: []int64{0}}
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("zero step accepted")
	}
	ragged := &SteppedNest{Name: "r", Lower: []int64{0, 0}, Upper: []int64{4}, Step: []int64{1}}
	if _, err := ragged.Normalize(); err == nil {
		t.Fatal("ragged bounds accepted")
	}
	indivisible := &SteppedNest{
		Name:  "i",
		Lower: []int64{0},
		Upper: []int64{8},
		Step:  []int64{2},
		Stmts: []Stmt{{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(1)}},
		}},
	}
	if _, err := indivisible.Normalize(); err == nil {
		t.Fatal("stride-indivisible offset accepted")
	}
}
