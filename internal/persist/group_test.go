package persist

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitDurableAndCoalesced: 32 concurrent appenders under
// group commit all come back durable, and the committer coalesces them
// into strictly fewer fsync groups than appends.
func TestGroupCommitDurableAndCoalesced(t *testing.T) {
	dir := t.TempDir()
	var groups, grouped atomic.Int64
	s, _, _ := openOrFatal(t, dir, Options{
		Fsync:       FsyncAlways,
		GroupCommit: true,
		GroupWindow: 2 * time.Millisecond,
		OnGroupCommit: func(records, bytes int) {
			groups.Add(1)
			grouped.Add(int64(records))
		},
	})

	const writers = 32
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Append(Record{
				Key:   fmt.Sprintf("k%02d", i),
				Value: []byte(fmt.Sprintf("v%02d", i)),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if got := grouped.Load(); got != writers {
		t.Fatalf("group commits accounted for %d records, want %d", got, writers)
	}
	if g := groups.Load(); g >= writers {
		t.Fatalf("committed %d groups for %d appends: no coalescing happened", g, writers)
	}

	_, recs, stats := openOrFatal(t, dir, Options{})
	if stats.TailErr != nil || stats.DroppedTailBytes != 0 {
		t.Fatalf("group-committed log reported tail damage: %+v", stats)
	}
	seen := map[string]string{}
	for _, r := range recs {
		seen[r.Key] = string(r.Value)
	}
	if len(seen) != writers {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers)
	}
	for i := 0; i < writers; i++ {
		k := fmt.Sprintf("k%02d", i)
		if seen[k] != fmt.Sprintf("v%02d", i) {
			t.Fatalf("record %s = %q after replay", k, seen[k])
		}
	}
}

// TestGroupCommitSizeBoundCutsWindow: a pending group larger than
// GroupMaxBytes commits without waiting out an absurdly long window.
func TestGroupCommitSizeBoundCutsWindow(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{
		Fsync:         FsyncAlways,
		GroupCommit:   true,
		GroupWindow:   time.Minute, // only the size bound can save us
		GroupMaxBytes: 64,
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Append(Record{Key: fmt.Sprintf("k%d", i), Value: bytes.Repeat([]byte{byte(i)}, 64)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size-bounded group took %v, the window was never cut short", elapsed)
	}
}

// TestGroupCommitCloseDrains: Close must flush pending appends (their
// waiters get an outcome, not a hang) and reject appends arriving after.
func TestGroupCommitCloseDrains(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{
		Fsync:       FsyncAlways,
		GroupCommit: true,
		GroupWindow: 50 * time.Millisecond, // long: Close arrives mid-window
	})
	const n = 4
	var wg sync.WaitGroup
	acked := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acked[i] = s.Append(Record{Key: fmt.Sprintf("k%d", i), Value: []byte("v")}) == nil
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the appends enqueue
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if err := s.Append(Record{Key: "late", Value: []byte("v")}); err == nil {
		t.Fatal("append after Close succeeded")
	}

	_, recs, _ := openOrFatal(t, dir, Options{})
	durable := map[string]bool{}
	for _, r := range recs {
		durable[r.Key] = true
	}
	for i, ok := range acked {
		if ok && !durable[fmt.Sprintf("k%d", i)] {
			t.Fatalf("append %d was acknowledged but is not durable after Close", i)
		}
	}
}

// TestGroupCommitOffByPolicy: GroupCommit under a non-always policy is a
// plain buffered append — no committer goroutine, no behavior change.
func TestGroupCommitOffByPolicy(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{
		Fsync:       FsyncNever,
		GroupCommit: true,
	})
	if s.groupMode() {
		t.Fatal("group mode active under FsyncNever")
	}
	if err := s.Append(Record{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := openOrFatal(t, dir, Options{})
	if len(recs) != 1 || recs[0].Key != "k" {
		t.Fatalf("replayed %+v, want the single record", recs)
	}
}

// The acceptance comparison: fsync=always append throughput under 32
// concurrent writers, with and without group commit. Group commit pays
// one fsync per group instead of one per record.
func benchmarkAppendParallel(b *testing.B, group bool) {
	dir := b.TempDir()
	s, _, _, err := Open(dir, Options{
		Fsync:       FsyncAlways,
		GroupCommit: group,
		GroupWindow: 500 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("x"), 128)
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := s.Append(Record{Key: fmt.Sprintf("bench-%d", i), Value: val}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkWALAppendAlwaysGrouped(b *testing.B)   { benchmarkAppendParallel(b, true) }
func BenchmarkWALAppendAlwaysUngrouped(b *testing.B) { benchmarkAppendParallel(b, false) }
