// Package sim provides a deterministic event-driven simulation of
// executing a partitioned, mapped nested loop on a message-passing
// multiprocessor with the paper's cost model (§IV): one floating-point
// operation costs t_calc, transmitting k words costs t_start + k·t_comm,
// and sending occupies the sending processor (communication is serialized
// with computation, which is how the paper accounts
// T_exec = 2W·t_calc + (2M−2)(t_start + t_comm) for the critical
// processor).
//
// The simulator executes index points in hyperplane-schedule order subject
// to data arrival: a point may start once every predecessor's value has
// arrived, interprocessor values being delayed by the message time over the
// mapped route. It reports the makespan plus per-processor busy, send, and
// traffic accounting, so the experiments can check both the paper's
// closed-form coefficients and its qualitative claims (communication
// invariant in machine size; comm/comp ratio falling with grain size).
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hyperplane"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/vec"
)

// ErrBadOptions wraps every rejection of a silently-conflicting option
// combination (e.g. LinkContention with a nil Assignment.Route), so
// callers can classify the failure as a caller error without string
// matching.
var ErrBadOptions = errors.New("sim: conflicting options")

// Assignment places every vertex of a computational structure on a
// processor.
type Assignment struct {
	// ProcOf[vi] is the processor of vertex vi (indices into Structure.V).
	ProcOf []int
	// NumProcs is the processor count.
	NumProcs int
	// Hops returns the route length between two distinct processors; nil
	// means one hop for any remote pair.
	Hops func(a, b int) int
	// Route returns the node sequence (inclusive of endpoints) a message
	// follows; required for Options.LinkContention. nil models an
	// uncontended network.
	Route func(a, b int) []int
}

// FromMapping combines a partitioning and a hypercube mapping into a
// vertex-level assignment with e-cube hop counts.
func FromMapping(p *core.Partitioning, m *mapping.Result) Assignment {
	procOf := make([]int, len(p.BlockOf))
	for vi, b := range p.BlockOf {
		procOf[vi] = m.NodeOf[b]
	}
	cube := m.Cube
	return Assignment{
		ProcOf:   procOf,
		NumProcs: cube.N,
		Hops:     func(a, b int) int { return cube.Distance(a, b) },
		Route:    cube.Route,
	}
}

// FromMeshMapping combines a partitioning and a mesh mapping into a
// vertex-level assignment with Manhattan hop counts.
func FromMeshMapping(p *core.Partitioning, m *mapping.MeshResult) Assignment {
	procOf := make([]int, len(p.BlockOf))
	for vi, b := range p.BlockOf {
		procOf[vi] = m.NodeOf[b]
	}
	msh := m.Mesh
	return Assignment{
		ProcOf:   procOf,
		NumProcs: msh.N(),
		Hops:     msh.Distance,
		Route:    msh.Route,
	}
}

// FromDegradedMapping combines a partitioning and a degraded hypercube
// mapping (failed nodes/links remapped and rerouted) into a vertex-level
// assignment with surviving-graph hop counts and routes. Failed nodes
// keep their processor ids but host no vertices.
func FromDegradedMapping(p *core.Partitioning, d *mapping.Degraded) Assignment {
	procOf := make([]int, len(p.BlockOf))
	for vi, b := range p.BlockOf {
		procOf[vi] = d.NodeOf[b]
	}
	return Assignment{
		ProcOf:   procOf,
		NumProcs: d.Cube.N,
		Hops:     d.Hops,
		Route:    d.Route,
	}
}

// BlocksAsProcs assigns each partitioned block its own processor — the
// pre-mapping ideal the partitioning phase reasons about.
func BlocksAsProcs(p *core.Partitioning) Assignment {
	procOf := make([]int, len(p.BlockOf))
	copy(procOf, p.BlockOf)
	return Assignment{ProcOf: procOf, NumProcs: p.NumBlocks()}
}

// Sequential places everything on one processor.
func Sequential(st *loop.Structure) Assignment {
	return Assignment{ProcOf: make([]int, len(st.V)), NumProcs: 1}
}

// Engine selects the simulation implementation.
type Engine int

const (
	// EnginePoint is the original per-index-point event simulation with
	// full predecessor/successor tables — the reference engine.
	EnginePoint Engine = iota
	// EngineBlock is the block-level coarse engine (SimulateBlockLevel):
	// it exploits Lemma 1 — a partitioned block never executes two index
	// points at the same hyperplane step — to schedule one slot per
	// (block, step) from per-processor clocks and a single arrival time
	// per vertex, with no dependency tables and no per-event allocation.
	// It produces bit-identical results to EnginePoint.
	EngineBlock
)

// Options tunes the simulation.
type Options struct {
	// Engine picks the simulation implementation; the zero value is the
	// point-level reference engine.
	Engine Engine
	// Aggregate merges all values a vertex sends to one destination
	// processor into a single message (one t_start, k words). The default
	// false charges every word its own message, the paper's accounting.
	Aggregate bool
	// Timeline records per-processor compute/send spans in Stats.Spans
	// (for Gantt rendering). Costs memory proportional to events.
	Timeline bool
	// LinkContention models store-and-forward links that carry one
	// message at a time: a message occupies every link of its route
	// (Assignment.Route) for k·t_comm + t_hop each, queueing behind
	// earlier traffic. Requires Assignment.Route; the simulation rejects
	// the option (ErrBadOptions) when the assignment has none, because
	// silently falling back to an uncontended network would misreport
	// contention experiments.
	LinkContention bool
	// Faults optionally injects deterministic faults — node crashes, link
	// failures, per-message loss with retries, checkpoint/restart
	// accounting (see internal/fault). nil or an empty schedule is a
	// strict no-op: the fault-free simulation path is byte-for-byte
	// unchanged. Link failures require Assignment.Route.
	Faults *fault.Schedule
}

// Validate rejects option values no engine understands, with actionable
// messages. Simulate calls it on entry; callers building Options from
// external input can call it early to classify the failure as a caller
// error.
func (o Options) Validate() error {
	switch o.Engine {
	case EnginePoint, EngineBlock:
	default:
		return fmt.Errorf("sim: unknown Engine %d (have EnginePoint=%d, EngineBlock=%d)", o.Engine, EnginePoint, EngineBlock)
	}
	// Machine-size-dependent checks (crash node ranges, Route
	// requirements) run in validate once the assignment is known.
	if err := o.Faults.Validate(0); err != nil {
		return err
	}
	return nil
}

// SpanKind distinguishes timeline activities.
type SpanKind int

const (
	// SpanCompute is time spent executing index points.
	SpanCompute SpanKind = iota
	// SpanSend is time the processor spends injecting messages.
	SpanSend
)

// Span is one contiguous activity of a processor.
type Span struct {
	Proc       int
	Kind       SpanKind
	Start, End float64
}

// Stats is the outcome of a simulation.
type Stats struct {
	// Makespan is the completion time of the last index point.
	Makespan float64
	// Busy[p] is processor p's total computation time.
	Busy []float64
	// SendTime[p] is processor p's total time spent sending messages.
	SendTime []float64
	// SendWords and RecvWords count interprocessor words per processor.
	SendWords, RecvWords []int64
	// Messages is the total interprocessor message count.
	Messages int64
	// Words is the total interprocessor word count.
	Words int64
	// ProcOps[p] is processor p's abstract operation count.
	ProcOps []int64
	// MaxProcOps is the largest per-processor operation count (the paper's
	// 2W for matvec).
	MaxProcOps int64
	// Spans is the per-processor activity timeline (only recorded when
	// Options.Timeline is set), in chronological order per processor.
	Spans []Span

	// Crashes counts node crashes triggered by Options.Faults.
	Crashes int
	// Retransmits counts lost message transmissions that were retried.
	Retransmits int64
	// CheckpointTime is the total time processors spent writing
	// checkpoints at hyperplane-step boundaries.
	CheckpointTime float64
	// ReplayTime is the total un-checkpointed work replayed on takeover
	// nodes after crashes.
	ReplayTime float64

	// critical caches CriticalProc()+1; 0 means not yet computed, so the
	// ProcOps scan runs at most once per Stats.
	critical int
}

// MaxSendWords returns the largest per-processor outgoing word count.
func (s *Stats) MaxSendWords() int64 {
	var m int64
	for _, w := range s.SendWords {
		if w > m {
			m = w
		}
	}
	return m
}

// CriticalProc returns the processor with the most computation (the
// paper's critical processor — for matvec, the holder of the main-diagonal
// block). The scan over ProcOps runs once; the result is cached.
func (s *Stats) CriticalProc() int {
	if s.critical > 0 {
		return s.critical - 1
	}
	best := 0
	for p := range s.ProcOps {
		if s.ProcOps[p] > s.ProcOps[best] {
			best = p
		}
	}
	s.critical = best + 1
	return best
}

// CriticalCommWords returns the outgoing word count of the critical
// processor.
func (s *Stats) CriticalCommWords() int64 {
	if len(s.SendWords) == 0 {
		return 0
	}
	return s.SendWords[s.CriticalProc()]
}

// CriticalInOutWords returns the critical processor's total incident
// (sent + received) word count. The paper charges the critical matvec
// processor 2(M−1) words — the traffic incident to the main-diagonal
// block's boundary; the detailed simulation adds the processor's opposite
// cut, so this value lies in [2(M−1), 4(M−1)) for every machine size.
func (s *Stats) CriticalInOutWords() int64 {
	if len(s.SendWords) == 0 {
		return 0
	}
	p := s.CriticalProc()
	return s.SendWords[p] + s.RecvWords[p]
}

// validate checks the simulation inputs shared by both engines, including
// option combinations that only become checkable once the assignment is
// known (Route requirements, crash-node ranges).
func validate(st *loop.Structure, a Assignment, p machine.Params, opt Options) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(a.ProcOf) != len(st.V) {
		return fmt.Errorf("sim: assignment covers %d vertices, structure has %d", len(a.ProcOf), len(st.V))
	}
	if a.NumProcs <= 0 {
		return errors.New("sim: no processors")
	}
	for vi, pr := range a.ProcOf {
		if pr < 0 || pr >= a.NumProcs {
			return fmt.Errorf("sim: vertex %d on invalid processor %d", vi, pr)
		}
	}
	if opt.LinkContention && a.Route == nil {
		return fmt.Errorf("%w: LinkContention requires Assignment.Route (link queues follow the message path) — map onto a topology (e.g. FromMapping) or disable contention", ErrBadOptions)
	}
	if opt.Faults != nil {
		if err := opt.Faults.Validate(a.NumProcs); err != nil {
			return err
		}
		if len(opt.Faults.LinkFailures) > 0 && a.Route == nil {
			return fmt.Errorf("%w: fault schedule has link failures but Assignment.Route is nil (detours follow the message path) — map onto a topology or drop the link failures", ErrBadOptions)
		}
	}
	return nil
}

// defaultHops is the one-hop-for-any-remote-pair distance function used
// when the assignment supplies none.
func defaultHops(x, y int) int {
	if x == y {
		return 0
	}
	return 1
}

// networkArrivalFunc builds the message-arrival model: when k words
// injected at t0 reach dst. Under link contention each link of the route
// carries one message at a time (reservation follows the deterministic
// simulation order), so both engines produce identical contention queues.
func networkArrivalFunc(a Assignment, p machine.Params, hops func(int, int) int, contend bool) func(t0 float64, src, dst int, k int64) float64 {
	if !contend {
		return func(t0 float64, src, dst int, k int64) float64 {
			return t0 + p.MessageTime(k, hops(src, dst))
		}
	}
	linkFree := map[[2]int]float64{}
	return func(t0 float64, src, dst int, k int64) float64 {
		path := a.Route(src, dst)
		t := t0 + p.TStart
		per := float64(k)*p.TComm + p.THop
		for i := 1; i < len(path); i++ {
			lk := [2]int{path[i-1], path[i]}
			if linkFree[lk] > t {
				t = linkFree[lk]
			}
			t += per
			linkFree[lk] = t
		}
		return t
	}
}

// Simulate runs the event-driven execution with the engine selected in
// Options (the point-level reference engine by default).
func Simulate(st *loop.Structure, sch hyperplane.Schedule, a Assignment, p machine.Params, opt Options) (*Stats, error) {
	return SimulateCtx(context.Background(), st, sch, a, p, opt)
}

// simCheckEvery is how often (in executed index points) the engines poll
// the context, amortizing the cancellation check over the event loop.
const simCheckEvery = 4096

// SimulateCtx is Simulate with cooperative cancellation: the event loop
// polls ctx every simCheckEvery executed points, so a caller's deadline
// bounds even huge simulations. A nil ctx means context.Background().
func SimulateCtx(ctx context.Context, st *loop.Structure, sch hyperplane.Schedule, a Assignment, p machine.Params, opt Options) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Engine == EngineBlock {
		return simulateBlockLevel(ctx, st, sch, a, p, opt)
	}
	if err := validate(st, a, p, opt); err != nil {
		return nil, err
	}
	hops := a.Hops
	if hops == nil {
		hops = defaultHops
	}

	nV, nD := len(st.V), len(st.D)
	opsPerPoint := float64(st.Nest.OpsPerIteration())

	// Precompute predecessor and successor vertex indices per dependence
	// (-1 when outside the index set). NeighborIndex resolves each arc with
	// stride arithmetic on rectangular nests, so the precompute allocates
	// nothing per entry.
	negD := make([]vec.Int, nD)
	for di, d := range st.D {
		negD[di] = d.Scale(-1)
	}
	pred := make([]int, nV*nD)
	succ := make([]int, nV*nD)
	for vi := range st.V {
		for di, d := range st.D {
			pred[vi*nD+di] = st.NeighborIndex(vi, negD[di])
			succ[vi*nD+di] = st.NeighborIndex(vi, d)
		}
	}

	// Execution order: by schedule step, then vertex index (topological
	// because Π·d > 0 strictly).
	order := make([]int, nV)
	steps := make([]int64, nV)
	for i := range order {
		order[i] = i
		steps[i] = sch.Step(st.V[i])
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := steps[order[i]], steps[order[j]]
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})

	stats := &Stats{
		Busy:      make([]float64, a.NumProcs),
		SendTime:  make([]float64, a.NumProcs),
		SendWords: make([]int64, a.NumProcs),
		RecvWords: make([]int64, a.NumProcs),
	}

	// Fault injection is a strict no-op unless a non-empty schedule is
	// set: fs stays nil and every fault branch below is skipped, leaving
	// the fault-free arithmetic byte-for-byte unchanged.
	var fs *faultState
	if opt.Faults != nil && !opt.Faults.Empty() {
		fs = newFaultState(opt.Faults, a, p, hops, stats)
	}
	networkArrival := networkArrivalFunc(a, p, hops, opt.LinkContention && a.Route != nil)
	if fs != nil {
		networkArrival = fs.arrivalFunc(opt.LinkContention && a.Route != nil)
	}
	clock := make([]float64, a.NumProcs)
	finish := make([]float64, nV)
	// arrival[vi*nD+di] is when the value along dependence di reaches
	// vertex vi; zero when the predecessor is local or outside.
	arrival := make([]float64, nV*nD)
	stats.ProcOps = make([]int64, a.NumProcs)
	procOps := stats.ProcOps

	// prevStep tracks hyperplane-step boundaries for checkpoint hooks; the
	// order is step-sorted, so crossing a boundary fires the same endStep
	// sequence the block engine fires after each step bucket.
	var prevStep int64
	for oi, vi := range order {
		if oi%simCheckEvery == simCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pr := a.ProcOf[vi]
		if fs != nil {
			for prevStep < steps[vi] {
				fs.endStep(int(prevStep), clock)
				prevStep++
			}
		}
		// Ready once all remote inputs have arrived.
		ready := 0.0
		for di := 0; di < nD; di++ {
			if t := arrival[vi*nD+di]; t > ready {
				ready = t
			}
			if pi := pred[vi*nD+di]; pi >= 0 && a.ProcOf[pi] == pr {
				if finish[pi] > ready {
					ready = finish[pi]
				}
			}
		}
		// exec is the processor that physically runs the slot: pr itself on
		// the fault-free path, pr's takeover node after a crash.
		exec := pr
		start := clock[pr]
		if ready > start {
			start = ready
		}
		if fs != nil {
			var err error
			exec, start, err = fs.beginCompute(pr, ready, opsPerPoint*p.TCalc, clock)
			if err != nil {
				return nil, err
			}
			fs.workSince[exec] += opsPerPoint * p.TCalc
		}
		end := start + opsPerPoint*p.TCalc
		stats.Busy[exec] += opsPerPoint * p.TCalc
		procOps[exec] += int64(opsPerPoint)
		finish[vi] = end
		clock[exec] = end
		if opt.Timeline {
			stats.Spans = append(stats.Spans, Span{Proc: exec, Kind: SpanCompute, Start: start, End: end})
		}

		// Deliver outputs; remote sends occupy the sender.
		type sendItem struct {
			target int // vertex
			dep    int
			proc   int
		}
		var remote []sendItem
		for di := 0; di < nD; di++ {
			si := succ[vi*nD+di]
			if si < 0 {
				continue
			}
			if a.ProcOf[si] != pr {
				remote = append(remote, sendItem{target: si, dep: di, proc: a.ProcOf[si]})
			}
		}
		if len(remote) == 0 {
			continue
		}
		if opt.Aggregate {
			// One message per destination processor.
			byProc := map[int][]sendItem{}
			var procsOrder []int
			for _, s := range remote {
				if _, ok := byProc[s.proc]; !ok {
					procsOrder = append(procsOrder, s.proc)
				}
				byProc[s.proc] = append(byProc[s.proc], s)
			}
			sort.Ints(procsOrder)
			for _, dst := range procsOrder {
				items := byProc[dst]
				k := int64(len(items))
				var arrivalTime float64
				if fs != nil {
					arrivalTime = fs.send(exec, pr, dst, k, clock, networkArrival, opt.Timeline)
				} else {
					sendDone := clock[pr] + p.TStart + float64(k)*p.TComm
					arrivalTime = networkArrival(clock[pr], pr, dst, k)
					if opt.Timeline {
						stats.Spans = append(stats.Spans, Span{Proc: pr, Kind: SpanSend, Start: clock[pr], End: sendDone})
					}
					clock[pr] = sendDone
					stats.SendTime[pr] += p.TStart + float64(k)*p.TComm
					stats.Messages++
					stats.Words += k
					stats.SendWords[pr] += k
					stats.RecvWords[dst] += k
				}
				for _, s := range items {
					if arrivalTime > arrival[s.target*nD+s.dep] {
						arrival[s.target*nD+s.dep] = arrivalTime
					}
				}
			}
		} else {
			// The paper's model: every word is its own message.
			for _, s := range remote {
				var arrivalTime float64
				if fs != nil {
					arrivalTime = fs.send(exec, pr, s.proc, 1, clock, networkArrival, opt.Timeline)
				} else {
					sendDone := clock[pr] + p.TStart + p.TComm
					arrivalTime = networkArrival(clock[pr], pr, s.proc, 1)
					if opt.Timeline {
						stats.Spans = append(stats.Spans, Span{Proc: pr, Kind: SpanSend, Start: clock[pr], End: sendDone})
					}
					clock[pr] = sendDone
					stats.SendTime[pr] += p.TStart + p.TComm
					stats.Messages++
					stats.Words++
					stats.SendWords[pr]++
					stats.RecvWords[s.proc]++
				}
				if arrivalTime > arrival[s.target*nD+s.dep] {
					arrival[s.target*nD+s.dep] = arrivalTime
				}
			}
		}
	}

	if fs != nil {
		for last := sch.Steps(); prevStep < last; prevStep++ {
			fs.endStep(int(prevStep), clock)
		}
	}

	for _, c := range clock {
		if c > stats.Makespan {
			stats.Makespan = c
		}
	}
	for _, o := range procOps {
		if o > stats.MaxProcOps {
			stats.MaxProcOps = o
		}
	}
	return stats, nil
}
