package mapping

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/kernels"
	"repro/internal/project"
)

// degradedCase maps a matvec partitioning onto a dim-cube.
func degradedCase(t *testing.T, size int64, dim int) (*core.Partitioning, *core.TIG, *Result) {
	t.Helper()
	k := kernels.MatVec(size)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := hyperplane.NewSchedule(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, sch.Pi)
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.Partition(ps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapPartitioning(part, dim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return part, core.BuildTIG(part), m
}

func TestDegradeMigratesOffFailedNodes(t *testing.T) {
	_, tig, m := degradedCase(t, 32, 4)
	for _, failed := range [][]int{{0}, {3}, {0, 5}, {1, 2, 7}} {
		d, stats, err := Degrade(m, tig, failed, nil)
		if err != nil {
			t.Fatalf("Degrade(%v): %v", failed, err)
		}
		isFailed := map[int]bool{}
		for _, n := range failed {
			isFailed[n] = true
		}
		for b, n := range d.NodeOf {
			if isFailed[n] {
				t.Fatalf("failed=%v: block %d still on dead node %d", failed, b, n)
			}
			if n != m.NodeOf[b] && !isFailed[m.NodeOf[b]] {
				t.Fatalf("failed=%v: block %d moved from healthy node %d", failed, b, m.NodeOf[b])
			}
		}
		// Every dead node that hosted blocks must be adopted by a
		// surviving node, and on an intact-links cube the Gray-code
		// neighbourhood guarantees a 1-hop takeover.
		for _, n := range failed {
			if len(m.Clusters[n]) == 0 {
				continue
			}
			q := d.TakenBy[n]
			if q < 0 || isFailed[q] {
				t.Fatalf("failed=%v: node %d adopted by %d", failed, n, q)
			}
		}
		if stats.MigratedBlocks == 0 {
			t.Fatalf("failed=%v: no blocks migrated", failed)
		}
		if stats.MaxMigrationHops != 1 {
			t.Fatalf("failed=%v: migration hops %d, want 1 (no link failures, survivors adjacent)", failed, stats.MaxMigrationHops)
		}
		if stats.HopWeightAfter != stats.HopWeightBefore+stats.ExtraHopWords {
			t.Fatalf("failed=%v: inconsistent hop accounting: %+v", failed, stats)
		}
	}
}

func TestDegradeRoutesAroundFailures(t *testing.T) {
	_, tig, m := degradedCase(t, 32, 3)
	// Kill node 1 and the 0–2 link: the direct e-cube routes 0→3 (via 1 or
	// 2) are now constrained.
	d, _, err := Degrade(m, tig, []int{1}, [][2]int{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 3}, {0, 2}, {4, 3}} {
		src, dst := pair[0], pair[1]
		route := d.Route(src, dst)
		if route[0] != src || route[len(route)-1] != dst {
			t.Fatalf("route %v does not join %d→%d", route, src, dst)
		}
		if len(route)-1 != d.Hops(src, dst) {
			t.Fatalf("route %v length %d != Hops %d", route, len(route)-1, d.Hops(src, dst))
		}
		for i := 1; i < len(route); i++ {
			u, v := route[i-1], route[i]
			if d.Failed[u] || d.Failed[v] {
				t.Fatalf("route %v crosses failed node", route)
			}
			if u == 0 && v == 2 || u == 2 && v == 0 {
				t.Fatalf("route %v crosses failed link 0–2", route)
			}
			if d.Cube.Distance(u, v) != 1 {
				t.Fatalf("route %v uses non-link %d–%d", route, u, v)
			}
		}
	}
	// 0→2 direct link is down, and relay node 1 is dead... a detour must
	// cost more than the intact distance.
	if d.Hops(0, 2) <= 1 {
		t.Fatalf("Hops(0,2)=%d despite dead link", d.Hops(0, 2))
	}
}

func TestDegradeErrors(t *testing.T) {
	_, tig, m := degradedCase(t, 16, 2)
	cases := []struct {
		name  string
		nodes []int
		links [][2]int
	}{
		{"all nodes", []int{0, 1, 2, 3}, nil},
		{"out of range node", []int{4}, nil},
		{"negative node", []int{-1}, nil},
		{"out of range link", nil, [][2]int{{0, 9}}},
		{"non-link", nil, [][2]int{{0, 3}}},
		{"self link", nil, [][2]int{{2, 2}}},
		// Node 0 isolated from the rest: links 0-1 and 0-2 down.
		{"partitioned", nil, [][2]int{{0, 1}, {0, 2}}},
	}
	for _, c := range cases {
		_, _, err := Degrade(m, tig, c.nodes, c.links)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrDegraded) {
			t.Errorf("%s: error %v does not wrap ErrDegraded", c.name, err)
		}
	}
	if _, _, err := Degrade(nil, tig, []int{0}, nil); !errors.Is(err, ErrDegraded) {
		t.Errorf("nil base: err = %v", err)
	}
}

func TestDegradeDeterministic(t *testing.T) {
	_, tig, m := degradedCase(t, 32, 4)
	a, sa, err := Degrade(m, tig, []int{5, 9}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Degrade(m, tig, []int{9, 5}, [][2]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for blk := range a.NodeOf {
		if a.NodeOf[blk] != b.NodeOf[blk] {
			t.Fatalf("block %d placement differs across equivalent inputs: %d vs %d", blk, a.NodeOf[blk], b.NodeOf[blk])
		}
	}
	if sa.MigratedBlocks != sb.MigratedBlocks || sa.ExtraHopWords != sb.ExtraHopWords ||
		sa.MaxMigrationHops != sb.MaxMigrationHops {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestSortFailed(t *testing.T) {
	got := SortFailed([]int{5, 1, 5, 3, 1})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SortFailed = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortFailed = %v, want %v", got, want)
		}
	}
}
