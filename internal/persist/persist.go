// Package persist implements the durable record store behind loopmapd's
// crash safety: an append-only, CRC-checksummed snapshot + write-ahead-log
// pair.
//
// The store holds opaque (key, value) records. loopmapd uses it to make
// its plan cache survive crashes: because a plan is a pure function of its
// canonicalized request, the durable record is the tiny canonical request
// — not the multi-megabyte artifact — and recovery recomputes the plan,
// which is bit-identical to the one that was lost (the same property the
// paper's Algorithm 1 gives blocks: cheap to re-derive from Π, the
// dependence matrix, and the bounds).
//
// # Layout
//
// A store directory contains two files sharing one format:
//
//	snapshot.dat  the compacted record set as of the last compaction
//	wal.log       records appended since that compaction
//
// Each file is an 8-byte magic header followed by length-prefixed records:
//
//	[uint32 payload length][uint32 CRC-32C of payload][payload]
//	payload = uvarint(len(key)) ‖ key ‖ value
//
// # Crash safety
//
// Appends go to the WAL under the configured fsync policy. Compaction
// writes the full live set to snapshot.tmp, fsyncs it, atomically renames
// it over snapshot.dat, and only then truncates the WAL — a crash at any
// point leaves either the old state or the new state plus a redundant WAL
// suffix, and replaying a record twice is harmless because keyed replay is
// idempotent.
//
// # Corruption tolerance
//
// A SIGKILL mid-write can leave a torn record at the WAL tail. Replay
// verifies every record's length bound and checksum and stops at the first
// bad one, reporting — never failing on — the dropped tail; Open then
// truncates the WAL back to the last good record so new appends extend a
// clean log. The snapshot has no legitimate torn tail (it is written and
// fsynced whole), so a bad record there is bitrot, not a crash artifact:
// snapshot replay quarantines the corrupt span, resynchronizes on the next
// frame whose checksum validates, and keeps every intact record on both
// sides. Startup therefore always succeeds with every record that was
// durable and readable at the time of the crash.
//
// # Degraded state
//
// A store never retries-and-trusts a failed write: the first WAL write,
// fsync, or compaction failure latches the store into a sticky read-only
// degraded state. Every later Append/Sync/Compact fails fast with
// ErrDegraded, and the owner is expected to stop acknowledging durable
// writes (loopmapd serves cached reads and 503s the rest). The latch is
// deliberate — after one fsync failure the kernel may have dropped the
// dirty pages, so "retry until it works" silently converts durability
// into data loss.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

const (
	snapshotName = "snapshot.dat"
	walName      = "wal.log"
	tmpName      = "snapshot.tmp"

	// fileMagic opens every store file; a format change bumps the digit.
	fileMagic = "LOOPMAP1"

	// maxRecordBytes bounds a record's length prefix during replay, so a
	// corrupt length cannot provoke a giant allocation.
	maxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrDegraded marks the sticky read-only state a store enters on its
// first WAL write, fsync, or compaction failure. Every subsequent mutation
// fails fast with an error matching this sentinel; reads and replay are
// unaffected.
var ErrDegraded = errors.New("persist: store degraded (read-only after a write/sync failure)")

// Policy selects when appends reach stable storage.
type Policy int

const (
	// FsyncInterval (the default) fsyncs the WAL on a background ticker
	// every Options.Interval — bounded loss, near-zero append latency.
	FsyncInterval Policy = iota
	// FsyncAlways fsyncs after every append: a record handed back to the
	// caller is durable.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever
)

// ParsePolicy maps the -fsync flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (have always, interval, never)", s)
	}
}

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Options tunes a Store.
type Options struct {
	// Fsync is the append durability policy.
	Fsync Policy
	// Interval is the FsyncInterval flush period (default 100ms).
	Interval time.Duration

	// FS is the filesystem the store runs on (default: the real one).
	// cmd/diskchaos and tests inject a fault-injecting implementation.
	FS FS

	// GroupCommit coalesces concurrent FsyncAlways appends into one
	// write+fsync: an appender enqueues its frame, a committer flushes the
	// whole pending group after a short accumulation window, and every
	// waiter gets the group's write/sync error (or nil) individually. The
	// durability contract is unchanged — Append still returns only after
	// the record is on stable storage — but N concurrent appenders cost
	// ~1 fsync instead of N. Ignored under other policies, where appends
	// never sync inline.
	GroupCommit bool
	// GroupWindow is how long a commit waits for more appends to join the
	// group (default 1ms). GroupMaxBytes commits early once the pending
	// group outgrows it (default 256 KiB).
	GroupWindow   time.Duration
	GroupMaxBytes int64
	// OnGroupCommit, when set, observes every committed group: how many
	// records it coalesced and how many bytes it wrote. Called outside the
	// store's locks.
	OnGroupCommit func(records, bytes int)

	// OnDegrade, when set, is called exactly once — outside the store's
	// locks — when the store latches into the degraded read-only state,
	// with the failure that caused it.
	OnDegrade func(cause error)
	// OnSyncError, when set, observes every background interval-fsync
	// failure (which also latches the store). Called outside the locks.
	OnSyncError func(err error)
}

// Record is one durable (key, value) pair.
type Record struct {
	Key   string
	Value []byte
}

// ReplayStats reports what Open recovered.
type ReplayStats struct {
	// SnapshotRecords and WALRecords count the records replayed from each
	// file, in order; the caller sees their concatenation.
	SnapshotRecords int
	WALRecords      int
	// DroppedTailBytes is how much trailing garbage the WAL replay
	// discarded (torn final record, bit-flipped checksum, bad length).
	DroppedTailBytes int64
	// QuarantinedRegions and QuarantinedBytes count the corrupt spans the
	// snapshot replay skipped over: unlike the WAL's torn tail, a bad
	// snapshot record is quarantined in place and replay resynchronizes on
	// the next intact frame, keeping the records on both sides.
	QuarantinedRegions int
	QuarantinedBytes   int64
	// TailErr describes the first bad record that stopped or interrupted
	// a replay, nil when both files were fully intact. It is
	// informational: Open never fails on corruption.
	TailErr error
}

// Store is an open snapshot+WAL record store. Methods are safe for
// concurrent use; the store assumes a single owning process.
type Store struct {
	dir  string
	opts Options
	fs   FS

	mu        sync.Mutex
	wal       File
	walBytes  int64
	snapBytes int64
	closed    bool

	// degraded is the sticky read-only latch; degradeCause (under mu) is
	// the failure that tripped it.
	degraded     atomic.Bool
	degradeCause error

	stopFlush chan struct{}
	flushDone chan struct{}

	// Group-commit state (GroupCommit + FsyncAlways only). gcMu guards the
	// pending buffer and waiter list; the committer goroutine takes s.mu
	// only for the file write+sync, so enqueueing never blocks on I/O.
	gcMu      sync.Mutex
	gcPending []byte
	gcWaiters []chan error
	gcClosed  bool
	gcKick    chan struct{} // buffered 1: work arrived
	gcFull    chan struct{} // buffered 1: size bound hit, cut the window short
	gcStop    chan struct{}
	gcDone    chan struct{}
}

// groupMode reports whether this store coalesces appends.
func (s *Store) groupMode() bool {
	return s.opts.GroupCommit && s.opts.Fsync == FsyncAlways
}

// Open opens (creating if needed) the store in dir and replays it,
// returning the surviving records in append order — snapshot first, then
// WAL, duplicates included (keyed replay is idempotent for the caller). A
// torn WAL tail or a corrupt snapshot region is dropped/quarantined and
// reported in ReplayStats, never returned as an error.
func Open(dir string, opts Options) (*Store, []Record, ReplayStats, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = time.Millisecond
	}
	if opts.GroupMaxBytes <= 0 {
		opts.GroupMaxBytes = 256 << 10
	}
	if opts.FS == nil {
		opts.FS = osFS{}
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, ReplayStats{}, err
	}
	// A leftover snapshot.tmp is a compaction that never committed —
	// either a crash mid-write or a failed rename whose cleanup also
	// failed. Its contents are fully covered by snapshot.dat + WAL.
	_ = fsys.Remove(filepath.Join(dir, tmpName))

	var stats ReplayStats
	snapRecs, snapSize, snapRegions, snapQBytes, snapErr := replaySnapshot(fsys, filepath.Join(dir, snapshotName))
	stats.SnapshotRecords = len(snapRecs)
	stats.QuarantinedRegions = snapRegions
	stats.QuarantinedBytes = snapQBytes
	if snapErr != nil {
		stats.TailErr = snapErr
	}

	walPath := filepath.Join(dir, walName)
	walRecs, goodOff, walDropped, walErr := replayFile(fsys, walPath)
	stats.WALRecords = len(walRecs)
	stats.DroppedTailBytes += walDropped
	if walErr != nil && stats.TailErr == nil {
		stats.TailErr = walErr
	}

	wal, err := fsys.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, stats, err
	}
	if goodOff < int64(len(fileMagic)) {
		// Empty or headerless WAL: start it fresh.
		if err := wal.Truncate(0); err != nil {
			wal.Close()
			return nil, nil, stats, err
		}
		if _, err := wal.WriteAt([]byte(fileMagic), 0); err != nil {
			wal.Close()
			return nil, nil, stats, err
		}
		goodOff = int64(len(fileMagic))
	} else if walDropped > 0 {
		// Repair: cut the torn tail so appends extend a clean log.
		if err := wal.Truncate(goodOff); err != nil {
			wal.Close()
			return nil, nil, stats, err
		}
	}
	if _, err := wal.Seek(goodOff, io.SeekStart); err != nil {
		wal.Close()
		return nil, nil, stats, err
	}

	s := &Store{
		dir:       dir,
		opts:      opts,
		fs:        fsys,
		wal:       wal,
		walBytes:  goodOff,
		snapBytes: snapSize,
		stopFlush: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	if opts.Fsync == FsyncInterval {
		go s.flushLoop()
	} else {
		close(s.flushDone)
	}
	if s.groupMode() {
		s.gcKick = make(chan struct{}, 1)
		s.gcFull = make(chan struct{}, 1)
		s.gcStop = make(chan struct{})
		s.gcDone = make(chan struct{})
		go s.groupLoop()
	}
	return s, append(snapRecs, walRecs...), stats, nil
}

// latchLocked flips the sticky degraded latch. Caller holds s.mu; returns
// true when this call did the latching, in which case the caller must
// invoke fireDegrade(cause) after releasing the lock.
func (s *Store) latchLocked(cause error) bool {
	if s.degraded.Load() {
		return false
	}
	s.degradeCause = cause
	s.degraded.Store(true)
	return true
}

// fireDegrade delivers the one-time degraded callback outside the locks.
func (s *Store) fireDegrade(cause error) {
	if s.opts.OnDegrade != nil {
		s.opts.OnDegrade(cause)
	}
}

// degradedErrLocked wraps the latched cause in the ErrDegraded sentinel.
// Caller holds s.mu.
func (s *Store) degradedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrDegraded, s.degradeCause)
}

// Degraded reports whether the store has latched read-only.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// DegradedCause returns the failure that latched the store (nil while
// healthy).
func (s *Store) DegradedCause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradeCause
}

// flushLoop fsyncs the WAL on the configured interval until Close. A
// failed background sync is a durability loss like any other: it latches
// the store (and reports through OnSyncError) instead of being retried
// next tick as if nothing happened.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			var cause error
			var latched bool
			s.mu.Lock()
			if !s.closed && !s.degraded.Load() {
				if err := s.wal.Sync(); err != nil {
					cause = err
					latched = s.latchLocked(err)
				}
			}
			s.mu.Unlock()
			if cause != nil && s.opts.OnSyncError != nil {
				s.opts.OnSyncError(cause)
			}
			if latched {
				s.fireDegrade(cause)
			}
		case <-s.stopFlush:
			return
		}
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// WALBytes returns the WAL's current size — the compaction trigger input.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes
}

// SnapshotBytes returns the snapshot file's size as of Open or the last
// successful compaction.
func (s *Store) SnapshotBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapBytes
}

// Append writes one record to the WAL under the fsync policy. In
// group-commit mode it returns once the record's group has been written
// and fsynced — same durability, amortized sync. Any write or sync
// failure latches the store degraded and is returned wrapped in
// ErrDegraded; a latched store fails every Append fast.
func (s *Store) Append(rec Record) error {
	frame := encodeFrame(rec)
	if s.groupMode() {
		return s.appendGroup(frame)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("persist: store closed")
	}
	if s.degraded.Load() {
		err := s.degradedErrLocked()
		s.mu.Unlock()
		return err
	}
	n, err := s.wal.Write(frame)
	s.walBytes += int64(n)
	if err == nil && s.opts.Fsync == FsyncAlways {
		err = s.wal.Sync()
	}
	var latched bool
	if err != nil {
		latched = s.latchLocked(err)
	}
	s.mu.Unlock()
	if err != nil {
		if latched {
			s.fireDegrade(err)
		}
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	return nil
}

// appendGroup enqueues one encoded frame for the committer and blocks
// until its group reaches stable storage.
func (s *Store) appendGroup(frame []byte) error {
	s.gcMu.Lock()
	if s.gcClosed {
		s.gcMu.Unlock()
		return errors.New("persist: store closed")
	}
	s.gcPending = append(s.gcPending, frame...)
	ch := make(chan error, 1)
	s.gcWaiters = append(s.gcWaiters, ch)
	full := int64(len(s.gcPending)) >= s.opts.GroupMaxBytes
	s.gcMu.Unlock()
	select {
	case s.gcKick <- struct{}{}:
	default:
	}
	if full {
		select {
		case s.gcFull <- struct{}{}:
		default:
		}
	}
	return <-ch
}

// groupLoop is the committer: on the first append of a group it waits
// GroupWindow (or until GroupMaxBytes of frames are pending) for more
// appends to pile on, then commits them all with one write+fsync.
func (s *Store) groupLoop() {
	defer close(s.gcDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.gcStop:
			s.commitGroup() // final drain: no waiter is left hanging
			return
		case <-s.gcKick:
		}
		timer.Reset(s.opts.GroupWindow)
		select {
		case <-timer.C:
		case <-s.gcFull:
			if !timer.Stop() {
				<-timer.C
			}
		case <-s.gcStop:
			if !timer.Stop() {
				<-timer.C
			}
			s.commitGroup()
			return
		}
		s.commitGroup()
	}
}

// commitGroup writes and fsyncs everything pending, delivering the
// outcome to each waiter individually. A failed group latches the store:
// every waiter in the group gets ErrDegraded (none of their records are
// trustworthy after a failed fsync), as does every later group.
func (s *Store) commitGroup() {
	s.gcMu.Lock()
	buf, waiters := s.gcPending, s.gcWaiters
	s.gcPending, s.gcWaiters = nil, nil
	s.gcMu.Unlock()
	if len(waiters) == 0 {
		return
	}
	var err error
	var cause error
	var latched bool
	s.mu.Lock()
	switch {
	case s.closed:
		err = errors.New("persist: store closed")
	case s.degraded.Load():
		err = s.degradedErrLocked()
	default:
		var n int
		n, err = s.wal.Write(buf)
		s.walBytes += int64(n)
		if err == nil {
			err = s.wal.Sync()
		}
		if err != nil {
			cause = err
			latched = s.latchLocked(err)
			err = fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	s.mu.Unlock()
	if latched {
		s.fireDegrade(cause)
	}
	if s.opts.OnGroupCommit != nil {
		s.opts.OnGroupCommit(len(waiters), len(buf))
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// Sync forces the WAL to stable storage regardless of policy. A failure
// latches the store.
func (s *Store) Sync() error {
	var cause error
	var latched bool
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.degraded.Load() {
		err := s.degradedErrLocked()
		s.mu.Unlock()
		return err
	}
	err := s.wal.Sync()
	if err != nil {
		cause = err
		latched = s.latchLocked(err)
		err = fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	s.mu.Unlock()
	if latched {
		s.fireDegrade(cause)
	}
	return err
}

// Compact atomically replaces the snapshot with the given live set and
// resets the WAL. Appends block for the duration; the caller supplies the
// records in the order it wants them replayed. Any failure removes the
// temporary snapshot (nothing stale is left behind) and latches the store
// degraded — a store whose WAL or snapshot state is uncertain must not
// accept further writes.
func (s *Store) Compact(live []Record) error {
	s.mu.Lock()
	cause, err := s.compactLocked(live)
	var latched bool
	if cause != nil {
		latched = s.latchLocked(cause)
	}
	s.mu.Unlock()
	if latched {
		s.fireDegrade(cause)
	}
	return err
}

// compactLocked performs the compaction under s.mu. It returns the
// latchable failure (nil for closed/already-degraded refusals, which
// leave no uncertain state) and the error to surface.
func (s *Store) compactLocked(live []Record) (cause, err error) {
	if s.closed {
		return nil, errors.New("persist: store closed")
	}
	if s.degraded.Load() {
		return nil, s.degradedErrLocked()
	}
	tmpPath := filepath.Join(s.dir, tmpName)
	fail := func(e error) (error, error) {
		// Best-effort cleanup: never leave a stale snapshot.tmp for a
		// future compaction (or Open) to trip over.
		_ = s.fs.Remove(tmpPath)
		return e, fmt.Errorf("%w: %v", ErrDegraded, e)
	}
	tmp, err := s.fs.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(err)
	}
	written := int64(0)
	n, err := tmp.Write([]byte(fileMagic))
	written += int64(n)
	if err != nil {
		tmp.Close()
		return fail(err)
	}
	for _, rec := range live {
		n, err := tmp.Write(encodeFrame(rec))
		written += int64(n)
		if err != nil {
			tmp.Close()
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := s.fs.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		return fail(err)
	}
	_ = s.fs.SyncDir(s.dir)
	// The snapshot now covers everything; restart the WAL. A crash between
	// the rename above and this truncate replays stale WAL records on top
	// of the new snapshot — idempotent, so harmless. (No tmp cleanup on
	// these paths: the rename already consumed it.)
	if err := s.wal.Truncate(int64(len(fileMagic))); err != nil {
		return err, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if _, err := s.wal.Seek(int64(len(fileMagic)), io.SeekStart); err != nil {
		return err, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if err := s.wal.Sync(); err != nil {
		return err, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	s.walBytes = int64(len(fileMagic))
	s.snapBytes = written
	return nil, nil
}

// Close flushes and closes the store. Further appends fail. In group-
// commit mode the committer drains every pending append first, so a
// caller whose Append already returned nil is never left non-durable.
func (s *Store) Close() error {
	if s.groupMode() {
		s.gcMu.Lock()
		already := s.gcClosed
		s.gcClosed = true
		s.gcMu.Unlock()
		if !already {
			close(s.gcStop)
		}
		<-s.gcDone
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if !s.degraded.Load() {
		// A degraded store's final sync would just fail again; its WAL
		// state was written off at latch time.
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.mu.Unlock()
	close(s.stopFlush)
	<-s.flushDone
	return err
}

// encodeFrame renders one record as [len][crc][payload].
func encodeFrame(rec Record) []byte {
	payload := make([]byte, 0, binary.MaxVarintLen64+len(rec.Key)+len(rec.Value))
	payload = binary.AppendUvarint(payload, uint64(len(rec.Key)))
	payload = append(payload, rec.Key...)
	payload = append(payload, rec.Value...)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	return append(frame, payload...)
}

// decodePayload splits a verified payload back into a Record.
func decodePayload(payload []byte) (Record, error) {
	klen, n := binary.Uvarint(payload)
	if n <= 0 || klen > uint64(len(payload)-n) {
		return Record{}, errors.New("persist: malformed record payload")
	}
	key := string(payload[n : n+int(klen)])
	val := append([]byte(nil), payload[n+int(klen):]...)
	return Record{Key: key, Value: val}, nil
}

// frameAt validates the frame starting at off and returns its decoded
// record and total length. ok is false for any torn, oversized,
// checksum-failed, or undecodable frame.
func frameAt(data []byte, off, total int64) (rec Record, flen int64, ok bool) {
	if total-off < 8 {
		return Record{}, 0, false
	}
	plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if plen > maxRecordBytes || off+8+plen > total {
		return Record{}, 0, false
	}
	payload := data[off+8 : off+8+plen]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return Record{}, 0, false
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, false
	}
	return rec, 8 + plen, true
}

// replayFile reads every intact record of one store file with the WAL's
// tail-repair semantics: it stops at the first bad record. It returns the
// records, the offset just past the last good record, the number of
// trailing bytes dropped, and a description of what stopped the scan (nil
// for a clean EOF). A missing file replays as empty.
func replayFile(fsys FS, path string) (recs []Record, goodOff int64, dropped int64, tailErr error) {
	if fsys == nil {
		fsys = osFS{}
	}
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, int64(len(data)), fmt.Errorf("persist: %s: bad or missing header", filepath.Base(path))
	}
	off := int64(len(fileMagic))
	total := int64(len(data))
	for off < total {
		if total-off < 8 {
			return recs, off, total - off, fmt.Errorf("persist: %s: torn frame header at offset %d", filepath.Base(path), off)
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen > maxRecordBytes || off+8+plen > total {
			return recs, off, total - off, fmt.Errorf("persist: %s: bad record length %d at offset %d", filepath.Base(path), plen, off)
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return recs, off, total - off, fmt.Errorf("persist: %s: checksum mismatch at offset %d", filepath.Base(path), off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, total - off, fmt.Errorf("persist: %s: %w at offset %d", filepath.Base(path), err, off)
		}
		recs = append(recs, rec)
		off += 8 + plen
	}
	return recs, off, 0, nil
}

// resync scans forward from `from` for the next offset that parses as an
// intact frame, returning total when none exists. Quadratic only across
// corrupt spans — intact data never enters the scan.
func resync(data []byte, from, total int64) int64 {
	for cand := from; cand+8 <= total; cand++ {
		if _, _, ok := frameAt(data, cand, total); ok {
			return cand
		}
	}
	return total
}

// replaySnapshot reads every intact record of the snapshot with
// per-record quarantine: a bad frame mid-file (bitrot) does not cost the
// records behind it. Replay skips the corrupt span, resynchronizes on the
// next offset whose frame checksum validates, and continues. It returns
// the surviving records, the file size, the quarantined region count and
// byte total, and a description of the first corruption (informational).
func replaySnapshot(fsys FS, path string) (recs []Record, size int64, regions int, qBytes int64, firstErr error) {
	if fsys == nil {
		fsys = osFS{}
	}
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	total := int64(len(data))
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		if total == 0 {
			return nil, 0, 0, 0, nil
		}
		return nil, total, 1, total, fmt.Errorf("persist: %s: bad or missing header", filepath.Base(path))
	}
	off := int64(len(fileMagic))
	for off < total {
		if rec, flen, ok := frameAt(data, off, total); ok {
			recs = append(recs, rec)
			off += flen
			continue
		}
		next := resync(data, off+1, total)
		regions++
		qBytes += next - off
		if firstErr == nil {
			firstErr = fmt.Errorf("persist: %s: corrupt region at offset %d (%d bytes quarantined)", filepath.Base(path), off, next-off)
		}
		off = next
	}
	return recs, total, regions, qBytes, firstErr
}
