package persist

import (
	"errors"
	"fmt"
	"testing"
)

func digestEntries(n int) []DigestEntry {
	out := make([]DigestEntry, 0, n)
	for i := 0; i < n; i++ {
		v := []byte(fmt.Sprintf("value-%d", i))
		out = append(out, DigestEntry{Key: fmt.Sprintf("kernel=k%d|size=%d", i, i), CRC: EntryCRC(v)})
	}
	return out
}

func TestDigestEmptyStore(t *testing.T) {
	a := BuildDigest(nil, 4)
	b := BuildDigest(nil, 4)
	if a.Root() != b.Root() {
		t.Fatal("two empty digests disagree")
	}
	if a.Count() != 0 {
		t.Fatalf("empty digest count = %d", a.Count())
	}
	buckets, _, err := DiffDigests(a, b)
	if err != nil || len(buckets) != 0 {
		t.Fatalf("empty digests diff: buckets=%v err=%v", buckets, err)
	}
	// Empty vs one record must differ.
	c := BuildDigest(digestEntries(1), 4)
	if a.Root() == c.Root() {
		t.Fatal("empty digest equals a one-record digest")
	}
}

func TestDigestSingleRecord(t *testing.T) {
	es := digestEntries(1)
	a := BuildDigest(es, 6)
	b := BuildDigest(es, 6)
	if a.Root() != b.Root() {
		t.Fatal("identical single-record digests disagree")
	}
	buckets, _, err := DiffDigests(a, BuildDigest(nil, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 || buckets[0] != BucketOf(es[0].Key, 6) {
		t.Fatalf("single missing record localized to %v, want bucket %d", buckets, BucketOf(es[0].Key, 6))
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	es := digestEntries(64)
	rev := make([]DigestEntry, len(es))
	for i, e := range es {
		rev[len(es)-1-i] = e
	}
	if BuildDigest(es, 8).Root() != BuildDigest(rev, 8).Root() {
		t.Fatal("digest depends on entry order")
	}
}

func TestDigestTamperedCRC(t *testing.T) {
	es := digestEntries(32)
	depth := DigestDepth(len(es))
	clean := BuildDigest(es, depth)

	tampered := append([]DigestEntry(nil), es...)
	tampered[7].CRC ^= 0x1 // one corrupted record value
	dirty := BuildDigest(tampered, depth)

	if clean.Root() == dirty.Root() {
		t.Fatal("tampered CRC did not change the root")
	}
	buckets, _, err := DiffDigests(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	want := BucketOf(es[7].Key, depth)
	found := false
	for _, b := range buckets {
		if b == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("tampered record's bucket %d not in divergent set %v", want, buckets)
	}
	if len(buckets) != 1 {
		t.Fatalf("one tampered record diverged %d buckets: %v", len(buckets), buckets)
	}
}

// TestDigestLocalizationLogN pins the Merkle property: diffing trees
// that differ in one record visits O(depth) nodes, not O(buckets).
func TestDigestLocalizationLogN(t *testing.T) {
	es := digestEntries(512)
	depth := MaxDigestDepth // 4096 buckets
	clean := BuildDigest(es, depth)

	tampered := append([]DigestEntry(nil), es...)
	tampered[100].CRC ^= 0xdeadbeef
	dirty := BuildDigest(tampered, depth)

	buckets, comparisons, err := DiffDigests(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 {
		t.Fatalf("want 1 divergent bucket, got %v", buckets)
	}
	// A single divergent leaf forces one root comparison plus two child
	// comparisons per level on the divergent path: 2*depth + 1.
	if max := 2*depth + 1; comparisons > max {
		t.Fatalf("localization made %d comparisons; O(log n) bound is %d", comparisons, max)
	}
	if total := 2<<uint(depth) - 1; comparisons >= total/2 {
		t.Fatalf("localization made %d comparisons — closer to a full scan (%d nodes) than a root walk", comparisons, total)
	}
}

func TestDigestLeavesRoundTrip(t *testing.T) {
	es := digestEntries(100)
	d := BuildDigest(es, 7)
	back, err := DigestFromLeaves(d.Leaves(), d.Count())
	if err != nil {
		t.Fatal(err)
	}
	if back.Root() != d.Root() || back.Depth() != d.Depth() {
		t.Fatal("digest does not survive leaf-row round-trip")
	}
}

func TestDiffDigestsShapeMismatch(t *testing.T) {
	a := BuildDigest(nil, 3)
	b := BuildDigest(nil, 4)
	if _, _, err := DiffDigests(a, b); !errors.Is(err, ErrDigestShape) {
		t.Fatalf("want ErrDigestShape, got %v", err)
	}
	if _, err := DigestFromLeaves([]uint64{1, 2, 3}, 3); !errors.Is(err, ErrDigestShape) {
		t.Fatalf("want ErrDigestShape for non-power-of-two leaves, got %v", err)
	}
}
