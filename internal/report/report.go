// Package report renders aligned ASCII tables and small 2-D structure
// diagrams for the experiment drivers and examples — the textual
// equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/vec"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(row []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV(w io.Writer) {
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				io.WriteString(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			io.WriteString(w, c)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
}

// Grid2D renders a labelling of 2-D integer points as a grid, with the
// first coordinate increasing downward (rows) and the second rightward
// (columns) — the layout of the paper's Figs. 1 and 3.
// label(p) should return a short string for point p (e.g. its block ID).
func Grid2D(points []vec.Int, label func(p vec.Int) string) string {
	if len(points) == 0 {
		return "(empty)\n"
	}
	minI, maxI := points[0][0], points[0][0]
	minJ, maxJ := points[0][1], points[0][1]
	for _, p := range points {
		if p[0] < minI {
			minI = p[0]
		}
		if p[0] > maxI {
			maxI = p[0]
		}
		if p[1] < minJ {
			minJ = p[1]
		}
		if p[1] > maxJ {
			maxJ = p[1]
		}
	}
	cells := map[string]string{}
	width := 1
	for _, p := range points {
		l := label(p)
		cells[p.Key()] = l
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i := minI; i <= maxI; i++ {
		for j := minJ; j <= maxJ; j++ {
			l, ok := cells[vec.NewInt(i, j).Key()]
			if !ok {
				l = "."
			}
			fmt.Fprintf(&b, "%*s ", width, l)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram renders labelled horizontal bars scaled to maxWidth characters.
func Histogram(labels []string, values []float64, maxWidth int) string {
	if len(labels) != len(values) {
		panic("report: Histogram labels/values mismatch")
	}
	if maxWidth < 1 {
		maxWidth = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%s  %s %s\n", pad(labels[i], maxL), strings.Repeat("#", n), trimFloat(v))
	}
	return b.String()
}
