package codegen

import (
	"strings"
	"testing"

	"repro/internal/loop"
	"repro/internal/parser"
	"repro/internal/vec"
)

func parseProg(t *testing.T, src string) *parser.Program {
	t.Helper()
	prog, err := parser.ParseProgram("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGenerateBasicStructure(t *testing.T) {
	prog := parseProg(t, "for i = 0 to 3\n{\n y[i+1] = y[i] * a + x[i] / 2\n}")
	procOf := []int{0, 0, 1, 1}
	code, err := Generate(prog, vec.NewInt(1), procOf, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"const numProcs = 2",
		"const numChans = 1",
		"var seed uint64 = 9",
		`scalarValue("a")`,
		`inputValue("x", []int64{int64(0) + int64(1)*x[0]})`,
		"div(", // division lowered through the total-division helper
		"for x[0] = int64(0); x[0] <= int64(3); x[0]++",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateAffineBounds(t *testing.T) {
	prog := parseProg(t, "for i = 0 to 4\nfor j = 0 to i\n{\n A[i, j+1] = A[i, j]\n}")
	size := int(prog.Nest.Size())
	procOf := make([]int, size)
	code, err := Generate(prog, vec.NewInt(1, 1), procOf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "x[1] <= int64(0) + int64(1)*x[0]") {
		t.Errorf("affine upper bound not emitted:\n%s", grep(code, "x[1] <="))
	}
}

func TestGenerateErrors(t *testing.T) {
	prog := parseProg(t, "for i = 0 to 3\n{\n y[i+1] = y[i]\n}")
	if _, err := Generate(prog, vec.NewInt(1, 1), []int{0, 0, 0, 0}, 1, 1); err == nil {
		t.Error("Π arity mismatch accepted")
	}
	if _, err := Generate(prog, vec.NewInt(1), []int{0, 0}, 1, 1); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := Generate(prog, vec.NewInt(1), []int{0, 0, 0, 5}, 2, 1); err == nil {
		t.Error("out-of-range processor accepted")
	}
	if _, err := Generate(prog, vec.NewInt(1), []int{0, 0, 0, 0}, 0, 1); err == nil {
		t.Error("zero processors accepted")
	}
	noDeps := parseProg(t, "for i = 0 to 3\n{\n y[i] = x[i]\n}")
	if _, err := Generate(noDeps, vec.NewInt(1), []int{0, 0, 0, 0}, 1, 1); err == nil {
		t.Error("dependence-free program accepted")
	}
}

func TestExprGoForms(t *testing.T) {
	prog := parseProg(t, "for i = 0 to 3\n{\n y[i+1] = -(y[i] + 2) * c\n}")
	df, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	got := exprGo(prog.Stmts[0].Expr, df)
	if got != `((-(in[0] + float64(2))) * scalarValue("c"))` {
		t.Fatalf("exprGo = %q", got)
	}
}

func TestAffineGo(t *testing.T) {
	a := loop.Affine{Const: 2, Coeffs: []int64{0, -3}}
	if got := affineGo(a); got != "int64(2) + int64(-3)*x[1]" {
		t.Fatalf("affineGo = %q", got)
	}
	if got := affineGo(loop.Const(7)); got != "int64(7)" {
		t.Fatalf("affineGo const = %q", got)
	}
}

func TestIntVectorAndMatrix(t *testing.T) {
	if got := intVector(vec.NewInt(1, -2)); got != "[]int64{1, -2}" {
		t.Fatalf("intVector = %q", got)
	}
	if got := intMatrix([]vec.Int{vec.NewInt(1), vec.NewInt(-2)}); got != "[][]int64{[]int64{1}, []int64{-2}}" {
		t.Fatalf("intMatrix = %q", got)
	}
}

func grep(s, needle string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, needle) {
			return l
		}
	}
	return "(not found)"
}
