// Command partitiontest is the network-partition chaos harness for
// loopmapd's cluster mode.
//
// It boots an N-shard cluster fully in-process — every shard is a
// serve.Server on a real 127.0.0.1 listener — and threads ALL
// inter-shard traffic (forwards, health probes, replication pushes,
// anti-entropy exchanges) through a netchaos proxy fabric: one TCP proxy
// per directed shard pair. Clients keep direct, unproxied access to
// every shard the whole time; only the shards' view of each other
// degrades, exactly like a switch partition in a real deployment.
//
// The run is a seeded schedule of chaos cycles (netchaos.GeneratePlan):
// symmetric partitions, single-shard isolation, asymmetric cuts,
// blackholes, added latency, connection resets. Each cycle applies one
// failure, drives a seeded mixed /v1/plan + /v1/simulate load through
// the cluster-aware Multi client, heals the fabric, and asserts the
// partition-tolerance contract:
//
//   - no acked plan is lost: every response acknowledged during the
//     failure is re-served byte-identical (modulo cache and cluster
//     metadata) from the healed cluster;
//   - membership re-converges: every shard's probes revive every peer;
//   - anti-entropy converges the replicas: each shard's digest over its
//     owned keyspace matches its Gray-ring standby's copy, bucket root
//     and record count both;
//   - a forwarded request whose propagated deadline already passed is
//     rejected with 504, never recomputed;
//   - the client stays inside its per-call retry budget: total HTTP
//     attempts never exceed calls × RetryBudget.
//
// The plan derives from -seed and is printed as JSON at startup; a
// failing run replays exactly with the same seed (or a -plan file).
// CI runs a short deterministic version under -race (`make partition`).
//
//	partitiontest -shards 4 -cycles 6 -requests 24 -seed 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/netchaos"
	"repro/internal/serve"
)

// retryBudget caps each Multi call's total attempts (retries + failovers
// + hedges); the harness asserts the aggregate attempt count respects it.
const retryBudget = 8

func main() {
	shards := flag.Int("shards", 4, "cluster size")
	cycles := flag.Int("cycles", 6, "chaos cycles to run")
	requests := flag.Int("requests", 24, "requests driven per cycle")
	workers := flag.Int("workers", 4, "concurrent client goroutines")
	seed := flag.Uint64("seed", 1, "chaos plan + workload seed (runs replay per seed)")
	planFile := flag.String("plan", "", "replay a chaos plan from this JSON file instead of generating one")
	flag.Parse()

	if err := run(*shards, *cycles, *requests, *workers, *seed, *planFile); err != nil {
		fmt.Fprintln(os.Stderr, "partitiontest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("partitiontest: PASS")
}

func run(shards, cycles, requests, workers int, seed uint64, planFile string) error {
	if shards < 2 {
		return fmt.Errorf("need at least 2 shards, got %d", shards)
	}
	plan := netchaos.GeneratePlan(seed, shards, cycles)
	if planFile != "" {
		b, err := os.ReadFile(planFile)
		if err != nil {
			return err
		}
		plan = netchaos.Plan{}
		if err := json.Unmarshal(b, &plan); err != nil {
			return fmt.Errorf("parsing -plan: %w", err)
		}
		shards = plan.Shards
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	fmt.Printf("partitiontest: chaos plan: %s\n", plan)

	// --- Boot N in-process shards on real listeners. ---
	srvs := make([]*serve.Server, shards)
	tss := make([]*httptest.Server, shards)
	urls := make([]string, shards)
	addrs := make([]string, shards)
	for i := range srvs {
		srvs[i] = serve.New(serve.Config{})
		tss[i] = httptest.NewServer(srvs[i].Handler())
		defer tss[i].Close()
		urls[i] = tss[i].URL
		addrs[i] = strings.TrimPrefix(tss[i].URL, "http://")
	}

	// One proxy per directed shard pair; each shard's outbound transports
	// dial through its own edges, so cuts are as asymmetric as the plan
	// demands while clients stay directly connected.
	fabric, err := netchaos.NewFabric(addrs)
	if err != nil {
		return err
	}
	defer fabric.Close()

	for i, s := range srvs {
		through := &http.Client{Transport: &http.Transport{
			DialContext:         fabric.DialContext(i),
			MaxIdleConnsPerHost: 4,
		}}
		if err := s.EnableCluster(serve.ClusterOptions{
			SelfID:              i,
			Peers:               urls,
			ProbeInterval:       100 * time.Millisecond,
			ProbeTimeout:        500 * time.Millisecond,
			FailThreshold:       2,
			ForwardClient:       through,
			Prober:              cluster.HTTPProber{Client: through},
			AntiEntropyInterval: 150 * time.Millisecond,
		}); err != nil {
			return fmt.Errorf("enabling cluster on shard %d: %w", i, err)
		}
		defer s.Close()
	}

	m, err := client.NewMulti(client.MultiConfig{
		Endpoints: urls,
		Config: client.Config{
			MaxRetries:       2,
			BaseBackoff:      10 * time.Millisecond,
			MaxBackoff:       100 * time.Millisecond,
			BreakerThreshold: 5,
			BreakerCooldown:  200 * time.Millisecond,
		},
		RetryBudget: retryBudget,
	})
	if err != nil {
		return err
	}
	if err := waitReadyAll(m); err != nil {
		return err
	}
	if err := waitAllAlive(urls, shards); err != nil {
		return fmt.Errorf("initial convergence: %w", err)
	}

	// --- Chaos cycles. ---
	acked := map[string]recorded{}
	var calls int64
	load := generateWorkload(requests, int64(seed))
	for ci, ev := range plan.Cycles {
		fmt.Printf("partitiontest: cycle %d/%d: inject %s\n", ci+1, len(plan.Cycles), describe(ev))
		if err := fabric.Apply(ev); err != nil {
			return fmt.Errorf("cycle %d: applying %s: %w", ci, ev.Kind, err)
		}

		// Load under failure. Forwarding degrades to local service, so
		// every request must still be acknowledged.
		n, err := drive(m, load, workers, acked)
		calls += n
		if err != nil {
			return fmt.Errorf("cycle %d (%s): %w", ci, ev.Kind, err)
		}

		fabric.Heal()
		if err := waitAllAlive(urls, shards); err != nil {
			return fmt.Errorf("cycle %d (%s): heal: %w", ci, ev.Kind, err)
		}
		if err := waitDigestConverged(urls, shards); err != nil {
			return fmt.Errorf("cycle %d (%s): %w", ci, ev.Kind, err)
		}

		// Zero acked-plan loss: everything acknowledged so far re-serves
		// byte-identical from the healed cluster.
		for key, want := range acked {
			got, err := reissue(m, want.item)
			calls++
			if err != nil {
				return fmt.Errorf("cycle %d: replaying %s after heal: %w", ci, key, err)
			}
			if !reflect.DeepEqual(got.resp, want.response) {
				return fmt.Errorf("cycle %d: acked response for %s changed across the partition:\n  pre:  %+v\n  post: %+v",
					ci, key, want.response, got.resp)
			}
		}
		fmt.Printf("partitiontest: cycle %d/%d: healed; %d acked responses re-served identically, digests converged\n",
			ci+1, len(plan.Cycles), len(acked))
	}

	// --- Deadline contract: a forwarded request that arrives dead is
	// rejected up front, not recomputed. ---
	if err := checkDeadlineReject(urls[0]); err != nil {
		return err
	}
	fmt.Println("partitiontest: expired propagated deadline rejected with 504")

	// --- Retry budget: the whole run stayed inside calls × budget. ---
	st := m.Stats()
	if st.Attempts > calls*retryBudget {
		return fmt.Errorf("client made %d attempts for %d calls — exceeds the %d-per-call retry budget",
			st.Attempts, calls, retryBudget)
	}
	fmt.Printf("partitiontest: client stats: calls=%d attempts=%d (budget %d/call) failovers=%d hedges=%d budget_exhausted=%d\n",
		calls, st.Attempts, retryBudget, st.Failovers, st.Hedges, st.BudgetExhausted)
	return nil
}

// describe renders one chaos event for the cycle log line.
func describe(ev netchaos.Event) string {
	switch ev.Kind {
	case netchaos.KindPartition, netchaos.KindIsolate:
		return fmt.Sprintf("%s groups=%v", ev.Kind, ev.Groups)
	case netchaos.KindLatency:
		return fmt.Sprintf("%s %v edges=%v", ev.Kind, ev.Latency, ev.Edges)
	default:
		return fmt.Sprintf("%s edges=%v", ev.Kind, ev.Edges)
	}
}

// drive pushes the workload through the Multi client with workers
// goroutines, recording every acknowledged (normalized) response.
// Returns the number of calls issued.
func drive(m *client.Multi, load []workItem, workers int, acked map[string]recorded) (int64, error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	items := make(chan workItem)
	errc := make(chan error, 1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				got, err := reissue(m, it)
				if err != nil {
					select {
					case errc <- fmt.Errorf("request %s not acknowledged under failure: %w", it.key(), err):
					default:
					}
					continue
				}
				mu.Lock()
				acked[it.key()] = recorded{item: it, response: got.resp}
				mu.Unlock()
			}
		}()
	}
	for _, it := range load {
		items <- it
	}
	close(items)
	wg.Wait()
	select {
	case err := <-errc:
		return int64(len(load)), err
	default:
	}
	return int64(len(load)), nil
}

// waitAllAlive polls every shard until each one's probes report the full
// membership alive again.
func waitAllAlive(urls []string, want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, u := range urls {
			st, err := clusterStatus(u)
			if err != nil {
				ok = false
				break
			}
			alive := 0
			for _, sh := range st.Shards {
				if sh.Alive {
					alive++
				}
			}
			if alive != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("membership never re-converged to %d alive shards", want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// digestRow is one shard's answer about one owner's keyspace.
type digestRow struct {
	Root  string `json:"root"`
	Count int    `json:"count"`
}

// waitDigestConverged polls every owner↔standby pair until the standby's
// copy of the owner's keyspace digests identically to the owner's own —
// the anti-entropy worker has fully repaired whatever the partition
// dropped.
func waitDigestConverged(urls []string, shards int) error {
	active := make([]int, shards)
	for i := range active {
		active[i] = i
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for i := 0; i < shards && ok; i++ {
			standby := cluster.GraySucc(i, active)
			if standby == i {
				continue
			}
			own, err1 := fetchDigest(urls[i], i)
			rep, err2 := fetchDigest(urls[standby], i)
			if err1 != nil || err2 != nil || own.Root != rep.Root || own.Count != rep.Count {
				ok = false
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			var detail []string
			for i := 0; i < shards; i++ {
				standby := cluster.GraySucc(i, active)
				own, _ := fetchDigest(urls[i], i)
				rep, _ := fetchDigest(urls[standby], i)
				detail = append(detail, fmt.Sprintf("owner %d: %s/%d on self vs %s/%d on standby %d",
					i, own.Root, own.Count, rep.Root, rep.Count, standby))
			}
			return fmt.Errorf("anti-entropy never converged the replica digests:\n  %s",
				strings.Join(detail, "\n  "))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchDigest(url string, owner int) (digestRow, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/replica/digest?owner=%d&depth=8", url, owner), nil)
	if err != nil {
		return digestRow{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return digestRow{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return digestRow{}, fmt.Errorf("digest from %s: status %d", url, resp.StatusCode)
	}
	var row digestRow
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		return digestRow{}, err
	}
	return row, nil
}

// checkDeadlineReject sends a plan whose propagated deadline already
// passed, as if a slow hop relayed it too late, and requires the 504.
func checkDeadlineReject(url string) error {
	body, _ := json.Marshal(&api.PlanRequest{Kernel: "l1", Size: 8})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/plan", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.DeadlineHeader, strconv.FormatInt(time.Now().Add(-time.Second).UnixMicro(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		return fmt.Errorf("expired-deadline request: status %d, want 504", resp.StatusCode)
	}
	return nil
}

// --- workload (same deterministic generator family as clustertest) ---

type workItem struct {
	simulate bool
	plan     client.PlanRequest
	era      string
	engine   string
}

func (w workItem) key() string {
	cube := -2
	if w.plan.CubeDim != nil {
		cube = *w.plan.CubeDim
	}
	return fmt.Sprintf("sim=%t era=%s eng=%s kernel=%s size=%d cube=%d search=%t merge=%d noaux=%t",
		w.simulate, w.era, w.engine, w.plan.Kernel, w.plan.Size, cube,
		w.plan.SearchPi, w.plan.MergeFactor, w.plan.NoAux)
}

func generateWorkload(n int, seed int64) []workItem {
	rng := rand.New(rand.NewSource(seed))
	kernels := []string{"l1", "matmul", "matvec", "stencil", "sor2d", "convolution"}
	sizes := []int64{4, 6, 8, 10}
	var out []workItem
	for i := 0; i < n; i++ {
		it := workItem{
			plan: client.PlanRequest{
				Kernel: kernels[rng.Intn(len(kernels))],
				Size:   sizes[rng.Intn(len(sizes))],
				// A short per-request budget keeps forwards into
				// blackholed edges from stalling a whole cycle: the
				// forwarding context dies fast and the shard serves
				// locally.
				TimeoutMS: 2000,
			},
		}
		cube := rng.Intn(4) + 1
		it.plan.CubeDim = &cube
		switch rng.Intn(4) {
		case 0:
			it.plan.SearchPi = true
		case 1:
			it.plan.MergeFactor = int64(rng.Intn(2) + 2)
		case 2:
			it.plan.NoAux = true
		}
		if rng.Intn(3) == 0 {
			it.simulate = true
			it.era = []string{"1991", "unit", "balanced"}[rng.Intn(3)]
			it.engine = []string{"block", "point"}[rng.Intn(2)]
		}
		out = append(out, it)
	}
	return out
}

// recorded is an acknowledged response with cache and cluster metadata
// stripped, so copies from before and after a heal compare equal iff the
// payload bytes are identical.
type recorded struct {
	item     workItem
	response any
}

type norm struct{ resp any }

func reissue(m *client.Multi, it workItem) (norm, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if it.simulate {
		resp, err := m.Simulate(ctx, &client.SimulateRequest{PlanRequest: it.plan, Era: it.era, Engine: it.engine})
		if err != nil {
			return norm{}, err
		}
		resp.Cache = ""
		resp.Cluster = nil
		return norm{resp: *resp}, nil
	}
	resp, err := m.Plan(ctx, &it.plan)
	if err != nil {
		return norm{}, err
	}
	resp.Cache = ""
	resp.Cluster = nil
	return norm{resp: *resp}, nil
}

func waitReadyAll(m *client.Multi) error {
	deadline := time.Now().Add(20 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := m.ReadyAll(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster never became ready: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func clusterStatus(url string) (*client.ClusterStatus, error) {
	c := client.New(client.Config{BaseURL: url, MaxRetries: 0})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return c.ClusterStatus(ctx)
}
