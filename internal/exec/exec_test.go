package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/loop"
	"repro/internal/mapping"
	"repro/internal/project"
	"repro/internal/vec"
)

func setup(t *testing.T, k *kernels.Kernel, dim int) (*loop.Structure, Placement, *core.Partitioning) {
	t.Helper()
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Partition(ps, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.MapPartitioning(p, dim, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, FromMapping(p, m), p
}

func TestAllKernelsMatchSequentialAcrossMachineSizes(t *testing.T) {
	for _, name := range kernels.Names() {
		for _, dim := range []int{0, 1, 2, 3} {
			k := kernels.Registry[name](6)
			st, pl, _ := setup(t, k, dim)
			want, err := kernels.RunSequential(k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, _, err := Run(k, st, pl)
			if err != nil {
				t.Fatalf("%s dim=%d: %v", name, dim, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s dim=%d: concurrent result differs from sequential", name, dim)
			}
		}
	}
}

func TestBlocksAsProcsMatchesSequential(t *testing.T) {
	k := kernels.MatMul(5)
	st, _, p := setup(t, k, 2)
	want, err := kernels.RunSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(k, st, BlocksAsProcs(p))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("blocks-as-procs result differs from sequential")
	}
	// With one block per processor, message count equals TIG traffic.
	tig := core.BuildTIG(p)
	if stats.Messages != tig.TotalTraffic() {
		t.Fatalf("messages %d != TIG traffic %d", stats.Messages, tig.TotalTraffic())
	}
}

func TestSingleProcessorNoMessages(t *testing.T) {
	k := kernels.MatVec(6)
	st, _, _ := setup(t, k, 0)
	pl := Placement{ProcOf: make([]int, len(st.V)), NumProcs: 1}
	res, stats, err := Run(k, st, pl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 {
		t.Fatalf("single processor sent %d messages", stats.Messages)
	}
	want, _ := kernels.RunSequential(k)
	if !res.Equal(want) {
		t.Fatal("single-processor result differs")
	}
}

func TestPointsPerProcCoverStructure(t *testing.T) {
	k := kernels.MatMul(5)
	st, pl, _ := setup(t, k, 2)
	_, stats, err := Run(k, st, pl)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range stats.PointsPerProc {
		total += c
	}
	if total != int64(len(st.V)) {
		t.Fatalf("points executed %d, structure has %d", total, len(st.V))
	}
}

func TestPartitioningReducesMessagesVsPointwise(t *testing.T) {
	// Blocks-as-procs must communicate no more than a point-per-proc
	// round-robin placement (the fine-grain strawman).
	k := kernels.MatMul(5)
	st, _, p := setup(t, k, 2)
	_, blockStats, err := Run(k, st, BlocksAsProcs(p))
	if err != nil {
		t.Fatal(err)
	}
	rr := Placement{ProcOf: make([]int, len(st.V)), NumProcs: 8}
	for vi := range st.V {
		rr.ProcOf[vi] = vi % 8
	}
	_, rrStats, err := Run(k, st, rr)
	if err != nil {
		t.Fatal(err)
	}
	if blockStats.Messages >= rrStats.Messages {
		t.Fatalf("partitioned messages %d not below round-robin %d", blockStats.Messages, rrStats.Messages)
	}
}

func TestMeshPlacementMatchesSequential(t *testing.T) {
	k := kernels.MatMul(6)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Partition(ps, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.MapPartitioningMesh(p, 2, 4, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.RunSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(k, st, FromMeshMapping(p, m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("mesh-placed execution differs from sequential")
	}
}

func TestRunErrors(t *testing.T) {
	k := kernels.MatVec(4)
	st, pl, _ := setup(t, k, 1)
	noSem := kernels.MatVec(4)
	noSem.Sem = nil
	if _, _, err := Run(noSem, st, pl); err == nil {
		t.Fatal("kernel without semantics accepted")
	}
	if _, _, err := Run(k, st, Placement{ProcOf: []int{0}, NumProcs: 1}); err == nil {
		t.Fatal("short placement accepted")
	}
	if _, _, err := Run(k, st, Placement{ProcOf: make([]int, len(st.V)), NumProcs: 0}); err == nil {
		t.Fatal("zero processors accepted")
	}
	bad := Placement{ProcOf: make([]int, len(st.V)), NumProcs: 2}
	bad.ProcOf[0] = 7
	if _, _, err := Run(k, st, bad); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestRunRejectsInvalidPi(t *testing.T) {
	// An invalid time function would deadlock the processors; Run must
	// reject it up front.
	k := kernels.MatVec(4)
	st, pl, _ := setup(t, k, 1)
	k.Pi = loopmapVec(1, -1) // Π·(0,1) < 0
	if _, _, err := Run(k, st, pl); err == nil {
		t.Fatal("invalid Π accepted")
	}
}

func loopmapVec(vals ...int64) vec.Int { return vec.NewInt(vals...) }

func TestRepeatedRunsDeterministic(t *testing.T) {
	// Concurrency must not introduce nondeterminism in the trace.
	k := kernels.Convolution(8, 4)
	st, pl, _ := setup(t, k, 2)
	first, _, err := Run(k, st, pl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _, err := Run(k, st, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Equal(first) {
			t.Fatalf("run %d differs", i)
		}
	}
}
