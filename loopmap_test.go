package loopmap

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/loop"
)

func TestNewPlanMatMulDefaults(t *testing.T) {
	plan, err := NewPlan(NewKernel("matmul", 4), PlanOptions{CubeDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partitioning.NumBlocks() != 17 {
		t.Fatalf("blocks = %d, want 17", plan.Partitioning.NumBlocks())
	}
	if plan.Schedule.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", plan.Schedule.Steps())
	}
	if plan.Procs() != 8 {
		t.Fatalf("procs = %d, want 8", plan.Procs())
	}
	if plan.Mapping == nil {
		t.Fatal("mapping missing")
	}
}

func TestNewPlanNoMapping(t *testing.T) {
	plan, err := NewPlan(NewKernel("matvec", 8), PlanOptions{CubeDim: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mapping != nil {
		t.Fatal("mapping should be skipped")
	}
	if plan.Procs() != plan.Partitioning.NumBlocks() {
		t.Fatalf("procs = %d, want one per block (%d)", plan.Procs(), plan.Partitioning.NumBlocks())
	}
	if _, err := plan.EvaluateMapping(); err == nil {
		t.Fatal("EvaluateMapping without mapping should error")
	}
}

func TestNewPlanSearchPi(t *testing.T) {
	plan, err := NewPlan(NewKernel("l1", 3), PlanOptions{SearchPi: true, CubeDim: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Schedule.Pi.Equal(Vec(1, 1)) {
		t.Fatalf("searched Π = %v, want (1,1)", plan.Schedule.Pi)
	}
}

func TestNewPlanExplicitPi(t *testing.T) {
	// A skewed Π = (2,1) on the stencil: s = 5, r = 5, and the whole
	// pipeline — including real concurrent execution — must still verify.
	plan, err := NewPlan(NewKernel("stencil", 6), PlanOptions{Pi: Vec(2, 1), CubeDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Schedule.Pi.Equal(Vec(2, 1)) {
		t.Fatalf("Π = %v", plan.Schedule.Pi)
	}
	if plan.Partitioning.R != 5 {
		t.Fatalf("r = %d, want 5", plan.Partitioning.R)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlanRejectsBadPi(t *testing.T) {
	if _, err := NewPlan(NewKernel("matmul", 4), PlanOptions{Pi: Vec(1, -1, 0)}); err == nil {
		t.Fatal("invalid Π accepted")
	}
}

func TestNewPlanNilKernel(t *testing.T) {
	if _, err := NewPlan(nil, PlanOptions{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

func TestVerifyAllKernels(t *testing.T) {
	for _, name := range KernelNames() {
		plan, err := NewPlan(NewKernel(name, 5), PlanOptions{CubeDim: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSimulateSpeedup(t *testing.T) {
	plan, err := NewPlan(NewKernel("matvec", 32), PlanOptions{CubeDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := Params{TCalc: 10, TStart: 1, TComm: 1}
	seq, err := plan.SimulateSequential(params)
	if err != nil {
		t.Fatal(err)
	}
	par, err := plan.Simulate(params, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Makespan >= seq.Makespan {
		t.Fatalf("no speedup: %v vs %v", par.Makespan, seq.Makespan)
	}
}

func TestSummaryContents(t *testing.T) {
	plan, err := NewPlan(NewKernel("matmul", 4), PlanOptions{CubeDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summary()
	for _, want := range []string{"matmul", "17 blocks", "Theorem 2 bound 4", "hypercube(dim=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestNewKernelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kernel did not panic")
		}
	}()
	NewKernel("nope", 4)
}

func TestKernelNamesNonEmpty(t *testing.T) {
	names := KernelNames()
	if len(names) < 7 {
		t.Fatalf("kernels = %v", names)
	}
}

func TestEraParams(t *testing.T) {
	if err := Era1991().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := UnitParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseKernelEndToEnd(t *testing.T) {
	src := `
for i = 0 to 7
for j = 0 to 7
{
  A[i+1, j+1] = A[i+1, j] + B[i, j]
  B[i+1, j]   = A[i, j] * 2 + C
}
`
	k, err := ParseKernel("parsed-l1", src, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Pi.Equal(Vec(1, 1)) {
		t.Fatalf("Π = %v", k.Pi)
	}
	plan, err := NewPlan(k, PlanOptions{CubeDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestParseKernelErrors(t *testing.T) {
	if _, err := ParseKernel("bad", "for i = 0 to", 1); err == nil {
		t.Fatal("syntax error accepted")
	}
	// No loop-carried dependences.
	if _, err := ParseKernel("nodeps", "for i = 0 to 3\n{\n A[i] = B[i]\n}", 1); err == nil {
		t.Fatal("dependence-free loop accepted")
	}
	// No valid time function within the search bound: deps {(0,1),(1,-5)}
	// need Π = (a,b) with b > 0 and a > 5b, i.e. a >= 6 > bound 3.
	src := "for i = 0 to 3\nfor j = 0 to 9\n{\n A[i, j+1] = A[i, j]\n B[i+1, j-5] = B[i, j]\n}"
	if _, err := ParseKernel("steep", src, 1); err == nil {
		t.Fatal("schedule outside search bound accepted")
	}
}

func TestMapOntoMesh(t *testing.T) {
	plan, err := NewPlan(NewKernel("matmul", 6), PlanOptions{CubeDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, st, err := plan.MapOntoMesh(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mesh.N() != 8 {
		t.Fatalf("mesh N = %d", m.Mesh.N())
	}
	if st.MaxLoad <= 0 || st.HopWeight <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Simulation on the mesh must complete with the same total work.
	s, err := plan.SimulateMesh(2, 4, UnitParams(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range s.Busy {
		total += b
	}
	want := float64(len(plan.Structure.V) * plan.Kernel.Nest.OpsPerIteration())
	if total != want {
		t.Fatalf("mesh sim busy %v, want %v", total, want)
	}
	if _, err := plan.SimulateMesh(3, 3, UnitParams(), SimOptions{}); err == nil {
		t.Fatal("non-power-of-two mesh accepted")
	}
}

func TestSimulateWithoutMapping(t *testing.T) {
	// CubeDim < 0: the simulator and executor fall back to one block per
	// processor.
	plan, err := NewPlan(NewKernel("matvec", 12), PlanOptions{CubeDim: -1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.Simulate(UnitParams(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Busy) != plan.Partitioning.NumBlocks() {
		t.Fatalf("procs = %d, want one per block", len(s.Busy))
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyErrorPaths(t *testing.T) {
	plan, err := NewPlan(NewKernel("matvec", 6), PlanOptions{CubeDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan.Kernel.Sem = nil
	if err := plan.Verify(); err == nil {
		t.Fatal("Verify without semantics should error")
	}
}

func TestSteppedNestThroughPipeline(t *testing.T) {
	// A non-unit-stride loop is normalized (the paper's "WLOG k_j = 1")
	// and then flows through the whole pipeline.
	s := &loop.SteppedNest{
		Name:  "stepped",
		Lower: []int64{2, 1},
		Upper: []int64{16, 13},
		Step:  []int64{2, 3},
		Stmts: []loop.Stmt{{
			Label:  "S1",
			Writes: []loop.Access{{Var: "A", Offset: Vec(0, 0)}},
			Reads:  []loop.Access{{Var: "A", Offset: Vec(-2, 0)}, {Var: "A", Offset: Vec(0, -3)}},
		}},
	}
	nest, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	deps := nest.Dependences()
	k := kernels.Generic("stepped", nest, deps, Vec(1, 1), 5)
	plan, err := NewPlan(k, PlanOptions{CubeDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	// 8×5 normalized iterations.
	if len(plan.Structure.V) != 40 {
		t.Fatalf("|V| = %d, want 40", len(plan.Structure.V))
	}
}

func TestPartitionChoiceThroughFacade(t *testing.T) {
	// Forcing each admissible grouping vector must keep the invariants.
	for choice := 1; choice <= 3; choice++ {
		plan, err := NewPlan(NewKernel("matmul", 4), PlanOptions{
			CubeDim:   2,
			Partition: PartitionOptions{GroupingChoice: choice},
		})
		if err != nil {
			t.Fatalf("choice %d: %v", choice, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("choice %d: %v", choice, err)
		}
	}
}
