package parser

import (
	"fmt"
	"strings"

	"repro/internal/loop"
	"repro/internal/vec"
)

// Expr is a parsed right-hand-side expression tree.
type Expr interface {
	// String renders the expression in source-like form.
	String() string
}

// NumLit is an integer literal.
type NumLit struct{ Val int64 }

func (e *NumLit) String() string { return fmt.Sprintf("%d", e.Val) }

// ScalarRef is a free scalar identifier (a loop-invariant constant such as
// the paper's C).
type ScalarRef struct{ Name string }

func (e *ScalarRef) String() string { return e.Name }

// AccessRef is an array access Var[sub_1, …, sub_r] with affine
// subscripts. Accesses of *computed* (written) variables must be uniform —
// rank equal to the nest depth with subscript k of the form I_k + c — and
// then Offset holds the constant part. Reads of pure-input (never-written)
// arrays may use any affine subscripts of any rank, e.g. the coefficient
// accesses A[i,j], w[j], or x[i−j] of the paper's source loops.
type AccessRef struct {
	Var string
	// Subs are the parsed affine subscript expressions.
	Subs []loop.Affine
	// Uniform reports whether the access has the I_k + c shape; Offset is
	// only meaningful when it does.
	Uniform bool
	Offset  vec.Int
}

func (e *AccessRef) String() string {
	parts := make([]string, len(e.Subs))
	if e.Uniform {
		for k, o := range e.Offset {
			switch {
			case o == 0:
				parts[k] = fmt.Sprintf("i%d", k+1)
			case o > 0:
				parts[k] = fmt.Sprintf("i%d+%d", k+1, o)
			default:
				parts[k] = fmt.Sprintf("i%d%d", k+1, o)
			}
		}
	} else {
		for k, a := range e.Subs {
			parts[k] = a.String()
		}
	}
	return fmt.Sprintf("%s[%s]", e.Var, strings.Join(parts, ","))
}

// Unary is a unary minus.
type Unary struct{ X Expr }

func (e *Unary) String() string { return "-" + e.X.String() }

// Binary is a binary arithmetic operation; Op is one of + - * /.
type Binary struct {
	Op   byte
	L, R Expr
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", e.L.String(), e.Op, e.R.String())
}

// StmtNode is one parsed statement with its full expression tree.
type StmtNode struct {
	Label string
	Write loop.Access
	Expr  Expr
}

// Program is a fully parsed loop: the structural nest plus the statement
// expression trees (the nest's loop.Stmt entries are derived from these).
type Program struct {
	Nest  *loop.Nest
	Stmts []StmtNode
}

// countOps counts arithmetic operators in an expression.
func countOps(e Expr) int {
	switch v := e.(type) {
	case *Binary:
		return 1 + countOps(v.L) + countOps(v.R)
	case *Unary:
		return countOps(v.X)
	default:
		return 0
	}
}

// collectReads appends the uniform array accesses of an expression (only
// uniform accesses can carry dependences; non-uniform reads are pure
// inputs).
func collectReads(e Expr, out *[]loop.Access) {
	switch v := e.(type) {
	case *AccessRef:
		if v.Uniform {
			*out = append(*out, loop.Access{Var: v.Var, Offset: v.Offset})
		}
	case *Unary:
		collectReads(v.X, out)
	case *Binary:
		collectReads(v.L, out)
		collectReads(v.R, out)
	}
}

// collectAccessRefs appends every AccessRef node of an expression.
func collectAccessRefs(e Expr, out *[]*AccessRef) {
	switch v := e.(type) {
	case *AccessRef:
		*out = append(*out, v)
	case *Unary:
		collectAccessRefs(v.X, out)
	case *Binary:
		collectAccessRefs(v.L, out)
		collectAccessRefs(v.R, out)
	}
}

// Scalars returns the free scalar names of the program, sorted.
func (p *Program) Scalars() []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *ScalarRef:
			seen[v.Name] = true
		case *Unary:
			walk(v.X)
		case *Binary:
			walk(v.L)
			walk(v.R)
		}
	}
	for _, s := range p.Stmts {
		walk(s.Expr)
	}
	var out []string
	for n := range seen {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
