package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// newTestCluster boots n serve.Servers wired to each other as shards with
// background probing disabled (tests tick membership by hand).
func newTestCluster(t *testing.T, n int) ([]*Server, []*httptest.Server) {
	t.Helper()
	srvs := make([]*Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		srvs[i] = New(Config{})
		tss[i] = httptest.NewServer(srvs[i].Handler())
		urls[i] = tss[i].URL
		t.Cleanup(tss[i].Close)
	}
	for i, s := range srvs {
		if err := s.EnableCluster(ClusterOptions{
			SelfID:        i,
			Peers:         urls,
			ProbeInterval: -1, // manual Tick only
			FailThreshold: 1,
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
	}
	return srvs, tss
}

// keyOwnedBy finds an l1 plan request whose canonical key rendezvous-
// hashes to the wanted shard among candidates.
func keyOwnedBy(t *testing.T, want int, candidates []int) (PlanRequest, string) {
	t.Helper()
	for size := int64(4); size <= 64; size++ {
		req := PlanRequest{Kernel: "l1", Size: size}
		key := CanonicalPlanKey(&req)
		if cluster.Owner(key, candidates) == want {
			return req, key
		}
	}
	t.Fatalf("no l1 size in [4,64] is owned by shard %d of %v", want, candidates)
	return PlanRequest{}, ""
}

func postPlan(t *testing.T, url string, req PlanRequest, hdr map[string]string) (*http.Response, PlanResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/plan", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, pr
}

func TestClusterForwardsToOwner(t *testing.T) {
	srvs, tss := newTestCluster(t, 2)
	req, key := keyOwnedBy(t, 1, []int{0, 1})

	// Hitting the non-owner must transparently forward to the owner.
	resp, pr := postPlan(t, tss[0].URL, req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if pr.Cluster == nil {
		t.Fatal("cluster-mode response missing cluster metadata")
	}
	if pr.Cluster.Shard != 1 || pr.Cluster.Owner != 1 {
		t.Fatalf("served by shard %d (owner %d), want owner 1 for key %q", pr.Cluster.Shard, pr.Cluster.Owner, key)
	}
	if pr.Cluster.Hops != 1 {
		t.Fatalf("hops = %d, want 1", pr.Cluster.Hops)
	}
	if got := srvs[0].Metrics().ForwardsSent; got != 1 {
		t.Fatalf("shard 0 forwards_sent = %d, want 1", got)
	}
	m1 := srvs[1].Metrics()
	if m1.ForwardsReceived != 1 || m1.ForwardHops != 1 {
		t.Fatalf("shard 1 forwards_received=%d hops=%d, want 1 and 1", m1.ForwardsReceived, m1.ForwardHops)
	}
	if m1.CacheMisses != 1 {
		t.Fatalf("owner cache misses = %d, want 1 (it computed the plan)", m1.CacheMisses)
	}

	// Hitting the owner directly serves locally with zero hops, warm.
	_, pr2 := postPlan(t, tss[1].URL, req, nil)
	if pr2.Cluster.Shard != 1 || pr2.Cluster.Hops != 0 {
		t.Fatalf("direct hit: shard=%d hops=%d, want 1 and 0", pr2.Cluster.Shard, pr2.Cluster.Hops)
	}
	if pr2.Cache != CacheHit {
		t.Fatalf("direct hit cache = %q, want %q", pr2.Cache, CacheHit)
	}
}

func TestClusterHopBudgetAndLoopDetection(t *testing.T) {
	srvs, tss := newTestCluster(t, 2)
	req, _ := keyOwnedBy(t, 1, []int{0, 1})
	dim := srvs[0].ClusterMembership().Dim()

	// A request arriving with the budget already spent is served locally by
	// the non-owner rather than forwarded further.
	resp, pr := postPlan(t, tss[0].URL, req, map[string]string{hopHeader: fmt.Sprint(dim)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if pr.Cluster.Shard != 0 {
		t.Fatalf("budget-stopped request served by shard %d, want local 0", pr.Cluster.Shard)
	}
	if got := srvs[0].Metrics().ForwardBudgetStops; got != 1 {
		t.Fatalf("forward_budget_stops = %d, want 1", got)
	}

	// A request whose visited path already contains this shard is a loop:
	// break it locally. A different cube_dim keeps it out of the encoded-
	// response cache the budget-stopped request just warmed — a frame hit
	// would (correctly) answer before the forwarding logic under test runs.
	dim2 := 2
	req.CubeDim = &dim2
	_, pr2 := postPlan(t, tss[0].URL, req, map[string]string{hopHeader: "1", pathHeader: "0"})
	if pr2.Cluster.Shard != 0 {
		t.Fatalf("looped request served by shard %d, want local 0", pr2.Cluster.Shard)
	}
	if got := srvs[0].Metrics().ForwardBudgetStops; got != 2 {
		t.Fatalf("forward_budget_stops = %d, want 2", got)
	}
}

// A dead owner's keyspace rehomes to the survivors: the degraded rehash
// excludes it exactly like Plan.RemapDegraded migrates blocks off dead
// nodes, and no request is ever lost to the failure.
func TestClusterDeadOwnerRehomes(t *testing.T) {
	srvs, tss := newTestCluster(t, 2)
	req, key := keyOwnedBy(t, 1, []int{0, 1})

	// Kill shard 1's listener. Without probing, shard 0 still believes it
	// alive; the forward fails, marks it dead, and the request is served
	// locally — acknowledged responses survive stale membership.
	tss[1].Close()
	resp, pr := postPlan(t, tss[0].URL, req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after owner death = %d", resp.StatusCode)
	}
	if pr.Cluster.Shard != 0 {
		t.Fatalf("served by shard %d, want survivor 0", pr.Cluster.Shard)
	}
	m := srvs[0].Metrics()
	if m.ForwardErrors != 1 {
		t.Fatalf("forward_errors = %d, want 1", m.ForwardErrors)
	}
	if srvs[0].ClusterMembership().IsAlive(1) {
		t.Fatal("failed forward did not mark the peer dead")
	}

	// With shard 1 dead the rehash moves ownership to shard 0: requests now
	// serve locally with no forwarding at all, and the second one is warm.
	if got := srvs[0].ClusterMembership().Owner(key); got != 0 {
		t.Fatalf("degraded owner = %d, want 0", got)
	}
	_, pr2 := postPlan(t, tss[0].URL, req, nil)
	if pr2.Cluster.Shard != 0 || pr2.Cluster.Owner != 0 {
		t.Fatalf("degraded serve: shard=%d owner=%d, want 0,0", pr2.Cluster.Shard, pr2.Cluster.Owner)
	}
	if pr2.Cache != CacheHit {
		t.Fatalf("rehomed key not warm on the survivor: cache = %q", pr2.Cache)
	}
	if got := srvs[0].Metrics().ForwardsSent; got != 0 {
		t.Fatalf("forwards_sent = %d, want 0 (owner is local)", got)
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	srvs, tss := newTestCluster(t, 4)
	resp, err := http.Get(tss[2].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != 2 || st.N != 4 || st.Dim != 2 {
		t.Fatalf("status = self %d n %d dim %d, want 2, 4, 2", st.Self, st.N, st.Dim)
	}
	if len(st.Shards) != 4 || !st.Shards[2].Self || !st.Shards[0].Alive {
		t.Fatalf("bad shard list: %+v", st.Shards)
	}
	_ = srvs
}

func TestClusterMetricsRender(t *testing.T) {
	srvs, tss := newTestCluster(t, 2)
	req, _ := keyOwnedBy(t, 1, []int{0, 1})
	postPlan(t, tss[0].URL, req, nil)

	hresp, err := http.Get(tss[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var b strings.Builder
	srvs[0].Metrics().render(&b)
	text := b.String()
	for _, want := range []string{
		"loopmapd_cluster_size 2",
		"loopmapd_cluster_forwards_sent_total 1",
		"loopmapd_cluster_peer_alive{shard=\"1\"} 1",
		"loopmapd_goroutines",
		"loopmapd_heap_alloc_bytes",
		"loopmapd_gc_pause_seconds_total",
		"loopmapd_build_info{go_version=\"go",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// --- singleflight cancellation (satellite) ---

// A coalesced follower whose context expires must get its own deadline
// error immediately, while the leader's computation — and every patient
// waiter — is unaffected.
func TestSingleflightFollowerCancellation(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})

	// Leader: blocks until released.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, shared := g.do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return "result", nil
		})
		if err != nil || v.(string) != "result" || shared {
			t.Errorf("leader: v=%v err=%v shared=%t", v, err, shared)
		}
	}()
	<-started

	// Patient follower: joins and waits the leader out.
	patientDone := make(chan struct{})
	go func() {
		defer close(patientDone)
		v, err, shared := g.do(context.Background(), "k", func() (any, error) {
			t.Error("patient follower ran fn — flight not shared")
			return nil, nil
		})
		if err != nil || v.(string) != "result" || !shared {
			t.Errorf("patient follower: v=%v err=%v shared=%t", v, err, shared)
		}
	}()

	// Impatient follower: a context that expires mid-coalesce must not hang
	// on the leader.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, shared := g.do(ctx, "k", func() (any, error) {
		t.Error("impatient follower ran fn — flight not shared")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("impatient follower err = %v, want DeadlineExceeded", err)
	}
	if !shared {
		t.Fatal("impatient follower did not report sharing")
	}

	// The abandoned wait must not have poisoned the shared computation.
	close(release)
	<-leaderDone
	<-patientDone

	// And the flight is fully cleaned up: a fresh caller recomputes.
	var again sync.Once
	ran := false
	v, err, shared := g.do(context.Background(), "k", func() (any, error) {
		again.Do(func() { ran = true })
		return "fresh", nil
	})
	if err != nil || v.(string) != "fresh" || shared || !ran {
		t.Fatalf("fresh caller after drain: v=%v err=%v shared=%t ran=%t", v, err, shared, ran)
	}
}
