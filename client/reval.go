// The client-side ETag cache backing Config.Revalidate: remembered plan
// responses keyed by the server's canonical response key, each with the
// strong ETag the daemon issued for it. Entries never go stale — the
// daemon's ETag is a pure function of the request — so the only
// invalidation is capacity eviction.
package client

import (
	"container/list"
	"sync"
)

type revalEntry struct {
	key  string
	etag string
	resp PlanResponse
}

// revalCache is a small entry-capped LRU, safe for concurrent use.
type revalCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

func newRevalCache(capacity int) *revalCache {
	return &revalCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *revalCache) get(key string) (revalEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return revalEntry{}, false
	}
	c.ll.MoveToFront(el)
	return *el.Value.(*revalEntry), true
}

func (c *revalCache) put(key, etag string, resp PlanResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*revalEntry)
		e.etag, e.resp = etag, resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&revalEntry{key: key, etag: etag, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*revalEntry).key)
	}
}

func (c *revalCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
