package loopmap_test

import (
	"fmt"
	"log"

	loopmap "repro"
)

// The full pipeline on the paper's Example 2: 4×4×4 matrix multiplication
// partitions into 17 blocks of at most r = 3 projection lines, and the TIG
// respects the Theorem 2 bound 2m − β = 4.
func ExampleNewPlan() {
	plan, err := loopmap.NewPlan(loopmap.NewKernel("matmul", 4), loopmap.PlanOptions{CubeDim: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocks:", plan.Partitioning.NumBlocks())
	fmt.Println("group size r:", plan.Partitioning.R)
	fmt.Println("max out-degree:", plan.TIG.MaxOutDegree())
	fmt.Println("steps:", plan.Schedule.Steps())
	// Output:
	// blocks: 17
	// group size r: 3
	// max out-degree: 4
	// steps: 10
}

// Parsing a loop written in the textual DSL derives its dependence
// vectors from the array accesses and searches the optimal time function.
func ExampleParseKernel() {
	src := `
for i = 0 to 3
for j = 0 to 3
{
  A[i+1, j+1] = A[i+1, j] + B[i, j]
  B[i+1, j]   = A[i, j] * 2 + C
}
`
	k, err := loopmap.ParseKernel("l1", src, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Π =", k.Pi)
	fmt.Println("channels:", len(k.Deps))
	// Output:
	// Π = (1, 1)
	// channels: 3
}

// Verify executes the plan concurrently — one goroutine per hypercube
// node, channels as links — and compares the full dataflow trace against
// sequential execution.
func ExamplePlan_Verify() {
	plan, err := loopmap.NewPlan(loopmap.NewKernel("matvec", 16), loopmap.PlanOptions{CubeDim: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified on", plan.Procs(), "processors")
	// Output:
	// verified on 4 processors
}

// Simulate prices the planned execution with the paper's cost model; the
// §IV analysis shows communication dominating fine-grain runs.
func ExamplePlan_Simulate() {
	plan, err := loopmap.NewPlan(loopmap.NewKernel("matvec", 64), loopmap.PlanOptions{CubeDim: 3})
	if err != nil {
		log.Fatal(err)
	}
	s, err := plan.Simulate(loopmap.Era1991(), loopmap.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := plan.SimulateSequential(loopmap.Era1991())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parallel slower than sequential at this grain:", s.Makespan > seq.Makespan)
	fmt.Println("messages:", s.Messages > 0)
	// Output:
	// parallel slower than sequential at this grain: true
	// messages: true
}
