package hyperplane

import (
	"errors"
	"testing"

	"repro/internal/loop"
	"repro/internal/vec"
)

func l1Structure(t *testing.T) *loop.Structure {
	t.Helper()
	n := loop.NewRect("L1", []int64{0, 0}, []int64{3, 3})
	st, err := loop.NewStructure(n, vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func matmulStructure(t *testing.T, sz int64) *loop.Structure {
	t.Helper()
	n := loop.NewRect("matmul", []int64{0, 0, 0}, []int64{sz - 1, sz - 1, sz - 1})
	st, err := loop.NewStructure(n, vec.NewInt(0, 1, 0), vec.NewInt(1, 0, 0), vec.NewInt(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestValid(t *testing.T) {
	deps := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1)}
	if !Valid(vec.NewInt(1, 1), deps) {
		t.Error("Π=(1,1) should be valid for L1")
	}
	if Valid(vec.NewInt(1, -1), deps) {
		t.Error("Π=(1,-1) gives Π·(0,1) = -1, invalid")
	}
	if Valid(vec.NewInt(0, 1), deps) {
		t.Error("Π=(0,1) gives Π·(1,0) = 0, invalid")
	}
}

func TestCheckMessages(t *testing.T) {
	if err := Check(vec.NewInt(0, 0), nil); err == nil {
		t.Error("zero Π must be rejected")
	}
	if err := Check(vec.NewInt(1, 0), []vec.Int{vec.NewInt(0, 1)}); err == nil {
		t.Error("orthogonal dependence must be rejected")
	}
	if err := Check(vec.NewInt(1, 1), []vec.Int{vec.NewInt(0, 1)}); err != nil {
		t.Errorf("valid Π rejected: %v", err)
	}
}

func TestScheduleL1(t *testing.T) {
	st := l1Structure(t)
	sch, err := NewSchedule(st, vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1: hyperplanes i+j = 0 .. 6 — seven steps.
	if sch.Steps() != 7 {
		t.Fatalf("Steps = %d, want 7", sch.Steps())
	}
	if sch.MinTime != 0 || sch.MaxTime != 6 {
		t.Fatalf("time range [%d,%d], want [0,6]", sch.MinTime, sch.MaxTime)
	}
	if sch.Step(vec.NewInt(2, 3)) != 5 {
		t.Errorf("Step(2,3) = %d", sch.Step(vec.NewInt(2, 3)))
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	// Every dependence must advance time: Step(u+d) > Step(u).
	st := matmulStructure(t, 4)
	sch, err := NewSchedule(st, vec.NewInt(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	st.ForEachEdge(func(e loop.Edge) {
		if sch.Step(e.To) <= sch.Step(e.From) {
			t.Fatalf("edge %v->%v does not advance time", e.From, e.To)
		}
	})
}

func TestScheduleRejectsInvalidPi(t *testing.T) {
	st := l1Structure(t)
	if _, err := NewSchedule(st, vec.NewInt(1, -1)); err == nil {
		t.Fatal("invalid Π accepted")
	}
	if _, err := NewSchedule(st, vec.NewInt(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestFindOptimalL1(t *testing.T) {
	st := l1Structure(t)
	sch, err := FindOptimal(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Pi.Equal(vec.NewInt(1, 1)) {
		t.Fatalf("optimal Π = %v, want (1,1)", sch.Pi)
	}
	if sch.Steps() != 7 {
		t.Fatalf("optimal steps = %d, want 7", sch.Steps())
	}
}

func TestFindOptimalMatMul(t *testing.T) {
	st := matmulStructure(t, 4)
	sch, err := FindOptimal(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Pi.Equal(vec.NewInt(1, 1, 1)) {
		t.Fatalf("optimal Π = %v, want (1,1,1)", sch.Pi)
	}
	// Hyperplanes i+j+k = 0..9: ten steps.
	if sch.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", sch.Steps())
	}
}

func TestFindOptimalSingleDependence(t *testing.T) {
	// Only d=(1,0): Π=(1,0) schedules columns in parallel — 4 steps on 4x4.
	n := loop.NewRect("col", []int64{0, 0}, []int64{3, 3})
	st, err := loop.NewStructure(n, vec.NewInt(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := FindOptimal(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Pi.Equal(vec.NewInt(1, 0)) || sch.Steps() != 4 {
		t.Fatalf("Π = %v steps = %d, want (1,0) and 4", sch.Pi, sch.Steps())
	}
}

func TestFindOptimalNormalizesPi(t *testing.T) {
	// With bound 2, (2,2) must collapse to (1,1) rather than be reported raw.
	st := l1Structure(t)
	sch, err := FindOptimal(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := sch.Pi.ContentGCD(); g != 1 {
		t.Fatalf("Π = %v not normalized", sch.Pi)
	}
}

func TestFindOptimalNoSolution(t *testing.T) {
	// Dependences (1,0) and (-1,0) admit no Π with both dots positive.
	n := loop.NewRect("cycle", []int64{0, 0}, []int64{2, 2})
	st, err := loop.NewStructure(n, vec.NewInt(1, 0), vec.NewInt(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindOptimal(st, 3); !errors.Is(err, ErrNoValidPi) {
		t.Fatalf("want ErrNoValidPi, got %v", err)
	}
}

func TestFindOptimalBadBound(t *testing.T) {
	st := l1Structure(t)
	if _, err := FindOptimal(st, 0); err == nil {
		t.Fatal("bound 0 accepted")
	}
}

func TestStepsRectMatchesEnumeration(t *testing.T) {
	// The closed form must agree with NewSchedule on rectangular nests,
	// including negative Π components and shifted bounds.
	cases := []struct {
		pi     vec.Int
		lo, hi []int64
		deps   []vec.Int
	}{
		{vec.NewInt(1, 1), []int64{0, 0}, []int64{3, 3}, []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0)}},
		{vec.NewInt(2, 1), []int64{0, 0}, []int64{5, 7}, []vec.Int{vec.NewInt(1, -1), vec.NewInt(0, 1)}},
		{vec.NewInt(1, -1), []int64{2, 1}, []int64{6, 4}, []vec.Int{vec.NewInt(1, 0), vec.NewInt(0, -1)}},
		{vec.NewInt(1, 1, 1), []int64{0, 0, 0}, []int64{3, 4, 5}, []vec.Int{vec.NewInt(1, 0, 0)}},
	}
	for _, c := range cases {
		n := loop.NewRect("r", c.lo, c.hi)
		st, err := loop.NewStructure(n, c.deps...)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := NewSchedule(st, c.pi)
		if err != nil {
			t.Fatal(err)
		}
		if got := StepsRect(c.pi, c.lo, c.hi); got != sch.Steps() {
			t.Errorf("StepsRect(%v, %v, %v) = %d, enumeration says %d", c.pi, c.lo, c.hi, got, sch.Steps())
		}
	}
	if StepsRect(vec.NewInt(1), []int64{3}, []int64{2}) != 0 {
		t.Error("empty range should have 0 steps")
	}
}

func TestWavefrontSizes(t *testing.T) {
	st := l1Structure(t)
	sch, err := NewSchedule(st, vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sizes := WavefrontSizes(st, sch)
	want := []int64{1, 2, 3, 4, 3, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	var total int64
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
		total += sizes[i]
	}
	if total != 16 {
		t.Errorf("total = %d, want 16", total)
	}
}
