package analysis

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestTableIExactCoefficients(t *testing.T) {
	// The six rows of Table I (M = 1024) verbatim from the paper.
	want := []TableIRow{
		{N: 1, CalcCoeff: 2097152, CommCoeff: 0},
		{N: 4, CalcCoeff: 786944, CommCoeff: 2046},
		{N: 16, CalcCoeff: 245888, CommCoeff: 2046},
		{N: 64, CalcCoeff: 64544, CommCoeff: 2046},
		{N: 256, CalcCoeff: 16328, CommCoeff: 2046},
		{N: 1024, CalcCoeff: 4094, CommCoeff: 2046},
	}
	got := TableI(1024, PaperTableISizes)
	if len(got) != len(want) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCommInvariantWithMachineSize(t *testing.T) {
	// §IV: "the communication time of our method is invariant when the
	// machine size becomes larger."
	base := MatVecCommWords(1024, 4)
	for _, n := range []int64{16, 64, 256, 1024} {
		if MatVecCommWords(1024, n) != base {
			t.Fatalf("comm words for N=%d differ from N=4", n)
		}
	}
}

func TestLoadMonotonicInN(t *testing.T) {
	prev := MatVecLoad(1024, 1)
	for _, n := range []int64{4, 16, 64, 256, 1024} {
		cur := MatVecLoad(1024, n)
		if cur >= prev {
			t.Fatalf("load did not decrease at N=%d: %d >= %d", n, cur, prev)
		}
		prev = cur
	}
}

func TestExecTimeNumeric(t *testing.T) {
	p := machine.Params{TCalc: 1, TStart: 100, TComm: 10}
	// N=1024: 4094*1 + 2046*110 = 4094 + 225060 = 229154.
	got := MatVecExecTime(1024, 1024, p)
	if math.Abs(got-229154) > 1e-9 {
		t.Fatalf("T_exec(1024) = %v, want 229154", got)
	}
	// N=1: pure compute.
	if got := MatVecExecTime(1024, 1, p); got != 2097152 {
		t.Fatalf("T_exec(1) = %v", got)
	}
}

func TestSpeedupBounds(t *testing.T) {
	p := machine.Era1991()
	for _, n := range []int64{4, 16, 64, 256, 1024} {
		s := Speedup(1024, n, p)
		if s <= 1 || s > float64(n) {
			t.Fatalf("speedup(N=%d) = %v out of (1, N]", n, s)
		}
		e := Efficiency(1024, n, p)
		if e <= 0 || e > 1 {
			t.Fatalf("efficiency(N=%d) = %v out of (0,1]", n, e)
		}
	}
}

func TestGrainSizeClaim(t *testing.T) {
	// The comm/comp ratio declines as the problem (grain) size grows, for
	// fixed N: the paper's medium-to-coarse-grain suitability claim.
	p := machine.Era1991()
	prev := math.Inf(1)
	for _, m := range []int64{64, 128, 256, 512, 1024, 2048} {
		r := CommCompRatio(m, 16, p)
		if r >= prev {
			t.Fatalf("comm/comp ratio did not decline at M=%d: %v >= %v", m, r, prev)
		}
		prev = r
	}
}

func TestRowString(t *testing.T) {
	r := TableIRow{N: 4, CalcCoeff: 786944, CommCoeff: 2046}
	if r.String() != "N = 4     786944·t_calc + 2046·(t_comm + t_start)" {
		t.Errorf("String = %q", r.String())
	}
	r1 := TableIRow{N: 1, CalcCoeff: 2097152}
	if r1.String() != "N = 1     2097152·t_calc" {
		t.Errorf("String = %q", r1.String())
	}
}

func TestMessageTime(t *testing.T) {
	p := machine.Params{TCalc: 1, TStart: 5, TComm: 2, THop: 3}
	if got := p.MessageTime(4, 1); got != 5+8 {
		t.Errorf("MessageTime(4,1) = %v", got)
	}
	if got := p.MessageTime(4, 3); got != 5+8+6 {
		t.Errorf("MessageTime(4,3) = %v", got)
	}
	if got := p.MessageTime(0, 3); got != 0 {
		t.Errorf("MessageTime(0,3) = %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := machine.Era1991().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (machine.Params{TCalc: 0, TStart: 1, TComm: 1}).Validate(); err == nil {
		t.Fatal("zero TCalc accepted")
	}
	if err := (machine.Params{TCalc: 1, TStart: -1}).Validate(); err == nil {
		t.Fatal("negative TStart accepted")
	}
}
