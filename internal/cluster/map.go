// The epoch-versioned cluster map: the single authoritative description
// of membership that every shard gossips, adopts, and hashes over.
//
// A Map is a monotonically-versioned shard roster. Any member that changes
// the roster (join, leave, probe-detected death or revival) bumps the
// epoch past the highest it has seen and stamps itself as the origin;
// version order is (epoch, then lower origin breaks ties), so concurrent
// edits converge deterministically as maps spread through the probe loop
// and response metadata. Departed shards stay in the map as tombstones —
// their IDs (hypercube addresses) are never reused, which keeps ownership
// and routing stable for everyone who has not yet heard of a departure.
//
// Replica placement dogfoods the paper's Gray-code adjacency argument:
// the standby for a key is its owner's successor on the Gray-code ring
// over the active shard set — by construction one cube hop away, the
// cheapest possible neighbor. ServingOwner is the shared routing rule
// (servers and clients alike): the HRW primary while it is alive,
// otherwise the first alive shard walking the Gray ring from the primary
// — exactly where the replicas were pushed.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ints"
)

// Shard lifecycle states carried in the cluster map.
const (
	// StateJoining: admitted by /v1/admin/join, streaming its keyspace;
	// probed but never an owner.
	StateJoining = "joining"
	// StateUp: a full member — owns its HRW keyspace.
	StateUp = "up"
	// StateLeft: a tombstone. The ID is retired, never reused.
	StateLeft = "left"
)

// MapShard is one roster entry of the cluster map.
type MapShard struct {
	ID    int    `json:"id"`
	URL   string `json:"url"`
	State string `json:"state"`
	// Down is the origin's probe verdict when it published the map — a
	// liveness hint for newcomers. Local probing remains authoritative.
	Down bool `json:"down,omitempty"`
}

// Map is the epoch-versioned cluster roster. Shards are sorted by ID.
type Map struct {
	Epoch  uint64     `json:"epoch"`
	Origin int        `json:"origin"`
	Shards []MapShard `json:"shards"`
}

// Newer reports whether m supersedes other: higher epoch wins; equal
// epochs break to the lower origin so concurrent bumps converge.
func (m Map) Newer(other Map) bool {
	if m.Epoch != other.Epoch {
		return m.Epoch > other.Epoch
	}
	return m.Origin < other.Origin
}

// Clone returns a deep copy (the shard slice is not shared).
func (m Map) Clone() Map {
	out := m
	out.Shards = append([]MapShard(nil), m.Shards...)
	return out
}

// Find returns the index of shard id in m.Shards, or -1.
func (m Map) Find(id int) int {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return i
		}
	}
	return -1
}

// FindURL returns the index of the shard with the given base URL, or -1.
func (m Map) FindURL(url string) int {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	for i := range m.Shards {
		if m.Shards[i].URL == url {
			return i
		}
	}
	return -1
}

// Active returns the sorted IDs of every StateUp shard — the HRW
// candidate set. Joining shards and tombstones own nothing.
func (m Map) Active() []int {
	out := make([]int, 0, len(m.Shards))
	for _, s := range m.Shards {
		if s.State == StateUp {
			out = append(out, s.ID)
		}
	}
	sort.Ints(out)
	return out
}

// Members returns the sorted IDs of every non-tombstone shard (up or
// joining) — the probe set.
func (m Map) Members() []int {
	out := make([]int, 0, len(m.Shards))
	for _, s := range m.Shards {
		if s.State != StateLeft {
			out = append(out, s.ID)
		}
	}
	sort.Ints(out)
	return out
}

// StaticMap builds the epoch-1 map of a fixed -peers roster: shard i at
// urls[i], everyone up. Every member of a static cluster constructs the
// identical map, so gossip is a no-op until the first membership event.
func StaticMap(urls []string) Map {
	shards := make([]MapShard, len(urls))
	for i, u := range urls {
		shards[i] = MapShard{ID: i, URL: strings.TrimRight(strings.TrimSpace(u), "/"), State: StateUp}
	}
	return Map{Epoch: 1, Shards: shards}
}

// Validate checks structural invariants: at least one shard, unique
// non-negative IDs in ascending order, non-empty URLs, known states.
func (m Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: empty map")
	}
	prev := -1
	for _, s := range m.Shards {
		if s.ID <= prev {
			return fmt.Errorf("cluster: map shard IDs not strictly ascending at %d", s.ID)
		}
		prev = s.ID
		if strings.TrimSpace(s.URL) == "" {
			return fmt.Errorf("cluster: map shard %d has an empty URL", s.ID)
		}
		switch s.State {
		case StateJoining, StateUp, StateLeft:
		default:
			return fmt.Errorf("cluster: map shard %d has unknown state %q", s.ID, s.State)
		}
	}
	return nil
}

// GraySucc returns the cyclic successor of id on the Gray-code ring over
// members: members sorted by the Gray rank of their hypercube address,
// so consecutive ring positions differ in one address bit whenever the
// cube is fully populated — the paper's adjacent-block placement. id need
// not itself be a member (its virtual ring position is used). Returns -1
// when members is empty, and id's sole companion when only one other
// member exists.
func GraySucc(id int, members []int) int {
	if len(members) == 0 {
		return -1
	}
	type ranked struct{ id, rank int }
	ring := make([]ranked, 0, len(members))
	for _, m := range members {
		ring = append(ring, ranked{m, int(ints.GrayInv(uint64(m)))})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].rank < ring[j].rank })
	selfRank := int(ints.GrayInv(uint64(id)))
	for _, r := range ring {
		if r.rank > selfRank {
			return r.id
		}
	}
	return ring[0].id
}

// ReplicaFor returns the standby shard of key: the Gray-ring successor
// of its HRW primary over the active set. Returns -1 when fewer than two
// active shards exist (nowhere to replicate).
func ReplicaFor(key string, active []int) int {
	if len(active) < 2 {
		return -1
	}
	return GraySucc(Owner(key, active), active)
}

// ServingOwner is the shared degraded-routing rule: the HRW primary of
// key over the active (state-up) set while that primary is alive,
// otherwise the first alive active shard walking the Gray ring from the
// primary — the replica chain, so hinted handoff lands exactly where the
// replicas were pushed. With no alive active shard it returns the
// primary unchanged (the caller serves locally as a last resort).
// Returns -1 only when active is empty.
func ServingOwner(key string, active []int, alive func(int) bool) int {
	if len(active) == 0 {
		return -1
	}
	primary := Owner(key, active)
	if alive == nil || alive(primary) {
		return primary
	}
	cur := primary
	for i := 1; i < len(active); i++ {
		cur = GraySucc(cur, active)
		if cur == primary {
			break
		}
		if alive(cur) {
			return cur
		}
	}
	return primary
}
