package persist_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/diskchaos"
	"repro/internal/persist"
)

func mustFaultFS(t *testing.T, rules ...diskchaos.Rule) *diskchaos.FS {
	t.Helper()
	ffs, err := diskchaos.New(diskchaos.Plan{Seed: 1, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	return ffs
}

// A failed fsync=always append must latch the store read-only: the append
// errors with ErrDegraded, OnDegrade fires exactly once, every later
// mutation is refused, and the records acked before the fault survive a
// reopen on healthy storage.
func TestAppendSyncFailureLatches(t *testing.T) {
	dir := t.TempDir()
	ffs := mustFaultFS(t, diskchaos.Rule{
		Op: diskchaos.OpSync, Path: "wal.log", Kind: diskchaos.KindEIO, After: 3, Count: -1,
	})
	var degrades atomic.Int64
	store, _, _, err := persist.Open(dir, persist.Options{
		Fsync: persist.FsyncAlways, FS: ffs,
		OnDegrade: func(error) { degrades.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var acked []persist.Record
	var failErr error
	for i := 0; i < 10; i++ {
		rec := persist.Record{Key: string(rune('a' + i)), Value: []byte(`{"v":1}`)}
		if err := store.Append(rec); err != nil {
			failErr = err
			break
		}
		acked = append(acked, rec)
	}
	if failErr == nil {
		t.Fatal("no append failed despite the armed sync fault")
	}
	if !errors.Is(failErr, persist.ErrDegraded) {
		t.Fatalf("append failure not tagged ErrDegraded: %v", failErr)
	}
	if len(acked) != 2 {
		t.Fatalf("acked %d appends before the third sync failed, want 2", len(acked))
	}

	// Sticky: every further mutation fails fast without touching disk.
	if err := store.Append(persist.Record{Key: "late", Value: []byte("v")}); !errors.Is(err, persist.ErrDegraded) {
		t.Fatalf("append after latch: %v", err)
	}
	if err := store.Sync(); !errors.Is(err, persist.ErrDegraded) {
		t.Fatalf("sync after latch: %v", err)
	}
	if err := store.Compact(acked); !errors.Is(err, persist.ErrDegraded) {
		t.Fatalf("compact after latch: %v", err)
	}
	if !store.Degraded() || store.DegradedCause() == nil {
		t.Fatal("store should report degraded with a cause")
	}
	if n := degrades.Load(); n != 1 {
		t.Fatalf("OnDegrade fired %d times, want exactly 1", n)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close of a degraded store: %v", err)
	}

	// Reopen on the real filesystem: everything acked must be there.
	store2, recs, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(recs) < len(acked) {
		t.Fatalf("recovered %d records, acked %d", len(recs), len(acked))
	}
	for i, want := range acked {
		if recs[i].Key != want.Key || string(recs[i].Value) != string(want.Value) {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want)
		}
	}
}

// The background interval-fsync must not swallow Sync errors: a failure
// reaches OnSyncError and latches the store, even though no foreground
// append observed it.
func TestIntervalFsyncFailureLatches(t *testing.T) {
	dir := t.TempDir()
	ffs := mustFaultFS(t, diskchaos.Rule{
		Op: diskchaos.OpSync, Path: "wal.log", Kind: diskchaos.KindEIO, Count: -1,
	})
	syncErrs := make(chan error, 16)
	degraded := make(chan error, 1)
	store, _, _, err := persist.Open(dir, persist.Options{
		Fsync: persist.FsyncInterval, Interval: 2 * time.Millisecond, FS: ffs,
		OnSyncError: func(err error) { syncErrs <- err },
		OnDegrade:   func(cause error) { degraded <- cause },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.Append(persist.Record{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatalf("interval-policy append should succeed before the flush: %v", err)
	}
	select {
	case err := <-syncErrs:
		if !errors.Is(err, diskchaos.ErrInjected) {
			t.Fatalf("OnSyncError got %v, want the injected fault", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background fsync failure never reached OnSyncError")
	}
	select {
	case <-degraded:
	case <-time.After(5 * time.Second):
		t.Fatal("background fsync failure never latched the store")
	}
	if err := store.Append(persist.Record{Key: "k2", Value: []byte("v")}); !errors.Is(err, persist.ErrDegraded) {
		t.Fatalf("append after background latch: %v", err)
	}
}

// A compaction whose tmp-file rename fails must remove the orphaned
// snapshot.tmp, latch the store, and leave the WAL intact so a reopen
// recovers every record.
func TestCompactRenameFailureCleansTmp(t *testing.T) {
	dir := t.TempDir()
	ffs := mustFaultFS(t, diskchaos.Rule{
		Op: diskchaos.OpRename, Path: "snapshot.tmp", Kind: diskchaos.KindEIO, Count: -1,
	})
	store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	recs := []persist.Record{
		{Key: "a", Value: []byte(`{"v":1}`)},
		{Key: "b", Value: []byte(`{"v":2}`)},
	}
	for _, r := range recs {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Compact(recs); !errors.Is(err, persist.ErrDegraded) {
		t.Fatalf("compact should fail degraded on the rename fault, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot.tmp left behind after failed compaction (stat err: %v)", err)
	}
	store.Close()

	store2, got, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records after failed compaction, want %d", len(got), len(recs))
	}
}

// Open must sweep a stale snapshot.tmp left by a crash mid-compaction.
func TestOpenRemovesStaleTmp(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snapshot.tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale snapshot.tmp survived Open (stat err: %v)", err)
	}
}

// ENOSPC and torn writes latch exactly like sync failures, and a reopen
// on healthy storage drops at most the unacked torn tail.
func TestWriteFaultsLatchAndPreserveAcked(t *testing.T) {
	for _, kind := range []diskchaos.Kind{diskchaos.KindENOSPC, diskchaos.KindShort, diskchaos.KindEIO} {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			ffs := mustFaultFS(t, diskchaos.Rule{
				Op: diskchaos.OpWrite, Path: "wal.log", Kind: kind, After: 4, Count: -1,
			})
			store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			var acked int
			for i := 0; i < 10; i++ {
				err := store.Append(persist.Record{Key: string(rune('a' + i)), Value: []byte(`{"v":1}`)})
				if err != nil {
					if !errors.Is(err, persist.ErrDegraded) {
						t.Fatalf("append fault not tagged ErrDegraded: %v", err)
					}
					break
				}
				acked++
			}
			// Open's magic-header WriteAt is write #1 through the fault
			// FS, so the 4th write is the 3rd append.
			if acked != 2 {
				t.Fatalf("acked %d appends, want 2 (fault armed on the 4th write)", acked)
			}
			store.Close()

			// The torn tail (KindShort leaves half a frame) must repair
			// away on reopen; every acked record must survive.
			store2, recs, stats, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
			if err != nil {
				t.Fatalf("reopen after %s: %v", kind, err)
			}
			defer store2.Close()
			if len(recs) != acked {
				t.Fatalf("recovered %d records, acked %d (stats %+v)", len(recs), acked, stats)
			}
			if kind == diskchaos.KindShort && stats.DroppedTailBytes == 0 {
				t.Fatal("torn write left no tail to repair — the fault did not tear")
			}
		})
	}
}

// Bitrot injected on the scrub's read is detected and reported without
// mutating the store: the next pass over the uncorrupted file is clean.
func TestScrubDetectsBitrot(t *testing.T) {
	dir := t.TempDir()
	// Read #1 of each file is Open's replay; read #2 of the snapshot is
	// the first scrub pass.
	ffs := mustFaultFS(t, diskchaos.Rule{
		Op: diskchaos.OpRead, Path: "snapshot.dat", Kind: diskchaos.KindBitrot, After: 2,
	})

	// Seed a snapshot through a clean store first.
	seed, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := []persist.Record{
		{Key: "a", Value: []byte(`{"kernel":"matmul","size":4}`)},
		{Key: "b", Value: []byte(`{"kernel":"matmul","size":8}`)},
	}
	for _, r := range recs {
		if err := seed.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Compact(recs); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	dirty := store.Scrub(0)
	if dirty.Clean() || dirty.CorruptRegions == 0 || dirty.FirstErr == nil {
		t.Fatalf("scrub missed the injected bitrot: %+v", dirty)
	}
	clean := store.Scrub(0)
	if !clean.Clean() {
		t.Fatalf("second scrub of the untouched file should be clean: %+v", clean)
	}
	if clean.SnapshotRecords != len(recs) {
		t.Fatalf("clean scrub verified %d snapshot records, want %d", clean.SnapshotRecords, len(recs))
	}
}

// A fault-free plan is a strict no-op: the store produces byte-identical
// files through the fault FS and the real one.
func TestFaultFreePlanIsNoOp(t *testing.T) {
	run := func(dir string, fs persist.FS) {
		store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		var live []persist.Record
		for i := 0; i < 6; i++ {
			rec := persist.Record{Key: string(rune('a' + i)), Value: []byte(`{"kernel":"matmul"}`)}
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec)
		}
		if err := store.Compact(live[:4]); err != nil {
			t.Fatal(err)
		}
		if err := store.Append(persist.Record{Key: "tail", Value: []byte(`{"v":9}`)}); err != nil {
			t.Fatal(err)
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}
	real := t.TempDir()
	faulted := t.TempDir()
	run(real, nil)
	run(faulted, mustFaultFS(t))
	for _, name := range []string{"snapshot.dat", "wal.log"} {
		a, err := os.ReadFile(filepath.Join(real, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(faulted, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between the real FS and an empty fault plan", name)
		}
	}
}
