package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openOrFatal(t *testing.T, dir string, opts Options) (*Store, []Record, ReplayStats) {
	t.Helper()
	s, recs, stats, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, recs, stats
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, recs, stats := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	if len(recs) != 0 || stats.TailErr != nil {
		t.Fatalf("fresh store replayed %d records, tail err %v", len(recs), stats.TailErr)
	}
	want := []Record{
		{Key: "a", Value: []byte(`{"kernel":"l1","size":8}`)},
		{Key: "b", Value: []byte{}},
		{Key: "c", Value: bytes.Repeat([]byte{0xff}, 1024)},
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, stats := openOrFatal(t, dir, Options{})
	if stats.TailErr != nil || stats.DroppedTailBytes != 0 {
		t.Fatalf("clean log reported tail damage: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCorruptTailBitFlip flips one bit in the final record and checks that
// replay keeps every earlier record, reports the damage, and repairs the
// WAL so subsequent appends replay cleanly.
func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		if err := s.Append(Record{Key: fmt.Sprintf("k%d", i), Value: []byte("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10 // bit-flip inside the last record's payload
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recs, stats := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	if len(recs) != 4 {
		t.Fatalf("replay after bit flip kept %d records, want 4", len(recs))
	}
	if stats.TailErr == nil || stats.DroppedTailBytes == 0 {
		t.Fatalf("bit flip not reported: %+v", stats)
	}
	// The store must have truncated the damage: appends extend a clean log.
	if err := s2.Append(Record{Key: "new", Value: []byte("after repair")}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats = openOrFatal(t, dir, Options{})
	if stats.TailErr != nil {
		t.Fatalf("repaired log still reports damage: %v", stats.TailErr)
	}
	if len(recs) != 5 || recs[4].Key != "new" {
		t.Fatalf("after repair+append: %d records, last %q; want 5 and \"new\"", len(recs), recs[len(recs)-1].Key)
	}
}

// TestTornTail simulates a SIGKILL mid-write: the final frame is cut short.
func TestTornTail(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // inside payload, inside header, mid-frame
		dir := t.TempDir()
		s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
		for i := 0; i < 3; i++ {
			if err := s.Append(Record{Key: fmt.Sprintf("k%d", i), Value: []byte("0123456789")}); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		walPath := filepath.Join(dir, walName)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, recs, stats := openOrFatal(t, dir, Options{})
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(recs))
		}
		if stats.TailErr == nil {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
	}
}

// TestBadLengthPrefix corrupts a length prefix into an absurd value.
func TestBadLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	if err := s.Append(Record{Key: "good", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Key: "bad", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// The second frame starts after magic + first frame (8 + payload).
	firstPayload := len(data) // recompute: find via replay offsets instead
	_ = firstPayload
	// Corrupt the second frame's length prefix (locate it by replaying).
	recs, goodOff, _, _ := replayFile(nil, walPath)
	if len(recs) != 2 {
		t.Fatalf("setup: %d records", len(recs))
	}
	// Walk one frame from the header to find the second frame's offset.
	off := int64(len(fileMagic))
	plen := int64(data[off]) | int64(data[off+1])<<8 | int64(data[off+2])<<16 | int64(data[off+3])<<24
	second := off + 8 + plen
	if second >= goodOff {
		t.Fatalf("setup: second frame offset %d past end %d", second, goodOff)
	}
	data[second+3] = 0x7f // length becomes ~2^31: absurd
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, stats := openOrFatal(t, dir, Options{})
	if len(got) != 1 || got[0].Key != "good" {
		t.Fatalf("replay kept %d records, want just \"good\"", len(got))
	}
	if stats.TailErr == nil {
		t.Fatal("bad length prefix not reported")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		if err := s.Append(Record{Key: fmt.Sprintf("k%d", i), Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.WALBytes()
	live := []Record{{Key: "k8", Value: []byte("x")}, {Key: "k9", Value: []byte("x")}}
	if err := s.Compact(live); err != nil {
		t.Fatal(err)
	}
	if s.WALBytes() >= before {
		t.Fatalf("WAL did not shrink on compaction: %d -> %d", before, s.WALBytes())
	}
	// New appends land after the compaction.
	if err := s.Append(Record{Key: "k10", Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, recs, stats := openOrFatal(t, dir, Options{})
	if stats.SnapshotRecords != 2 || stats.WALRecords != 1 {
		t.Fatalf("replay split snapshot/WAL = %d/%d, want 2/1", stats.SnapshotRecords, stats.WALRecords)
	}
	keys := []string{}
	for _, r := range recs {
		keys = append(keys, r.Key)
	}
	want := []string{"k8", "k9", "k10"}
	if len(keys) != len(want) {
		t.Fatalf("replayed keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("replayed keys %v, want %v", keys, want)
		}
	}
}

// TestLeftoverTmpIgnored proves a crash mid-compaction (tmp written, not
// renamed) does not poison the store.
func TestLeftoverTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncAlways})
	if err := s.Append(Record{Key: "live", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("partial snapshot junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := openOrFatal(t, dir, Options{})
	if len(recs) != 1 || recs[0].Key != "live" {
		t.Fatalf("leftover tmp corrupted replay: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover snapshot.tmp not removed on Open")
	}
}

func TestFsyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncInterval, Interval: 5 * time.Millisecond})
	if err := s.Append(Record{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the ticker fire at least once
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := openOrFatal(t, dir, Options{})
	if len(recs) != 1 {
		t.Fatalf("interval-flushed record lost: %d records", len(recs))
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{Fsync: FsyncNever})
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Append(Record{Key: fmt.Sprintf("w%d-%d", w, i), Value: []byte("v")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	_, recs, stats := openOrFatal(t, dir, Options{})
	if len(recs) != writers*each {
		t.Fatalf("concurrent appends: replayed %d, want %d", len(recs), writers*each)
	}
	if stats.TailErr != nil {
		t.Fatalf("concurrent appends interleaved corruptly: %v", stats.TailErr)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "never": FsyncNever,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openOrFatal(t, dir, Options{})
	s.Close()
	if err := s.Append(Record{Key: "k"}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
