// Package codegen is the back end of the mini parallelizing compiler: it
// emits a standalone, dependency-free Go program that executes a parsed
// loop nest under a partitioning/mapping computed by the paper's
// algorithms — one goroutine per processor, channels as links — and
// verifies the parallel run against its own sequential execution,
// printing "OK <checksum>" on success.
//
// The emitted program embeds: the loop bounds as real nested `for` loops,
// each statement's expression as straight-line Go arithmetic, the
// flow-dependence channels derived by the front end, the vertex→processor
// placement table, and a verbatim copy of the deterministic input
// function, so its results agree exactly with the in-process interpreter.
package codegen

import (
	"fmt"
	"strings"

	"repro/internal/loop"
	"repro/internal/parser"
	"repro/internal/vec"
)

// Generate emits the standalone program source. procOf assigns each index
// point (in lexicographic enumeration order) to a processor in
// [0, numProcs); pi is the hyperplane time function used to order each
// processor's points.
func Generate(prog *parser.Program, pi vec.Int, procOf []int, numProcs int, seed uint64) (string, error) {
	df, err := prog.Analyze()
	if err != nil {
		return "", err
	}
	dims := prog.Nest.Dims
	if len(pi) != dims {
		return "", fmt.Errorf("codegen: Π arity %d, nest dims %d", len(pi), dims)
	}
	if numProcs < 1 {
		return "", fmt.Errorf("codegen: numProcs %d", numProcs)
	}
	size := prog.Nest.Size()
	if int64(len(procOf)) != size {
		return "", fmt.Errorf("codegen: placement covers %d points, nest has %d", len(procOf), size)
	}
	for i, p := range procOf {
		if p < 0 || p >= numProcs {
			return "", fmt.Errorf("codegen: point %d on invalid processor %d", i, p)
		}
	}

	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format, args...) }

	w("// Code generated for loop %q by the repro loopmap pipeline; DO NOT EDIT.\n", prog.Nest.Name)
	w("//\n// SPMD execution of the partitioned nest on %d goroutine-processors,\n", numProcs)
	w("// verified against sequential execution. Prints \"OK <checksum>\".\n")
	w("package main\n\n")
	w("import (\n\t\"fmt\"\n\t\"os\"\n\t\"sort\"\n\t\"sync\"\n)\n\n")
	w("const dims = %d\n", dims)
	w("const numProcs = %d\n", numProcs)
	w("const numChans = %d\n\n", len(df.ChanDeps))
	// seed must be a variable: as a constant, seed*0x9e3779b97f4a7c15
	// would be a compile-time constant expression overflowing uint64.
	w("var seed uint64 = %d\n", seed)

	// Channel tables.
	w("var chanVars = []string{")
	for i, v := range df.ChanVars {
		if i > 0 {
			w(", ")
		}
		w("%q", v)
	}
	w("}\n")
	w("var chanDeps = %s\n", intMatrix(df.ChanDeps))
	writerOffs := make([]vec.Int, len(df.ChanVars))
	for i, v := range df.ChanVars {
		writerOffs[i] = df.WriterOf[v]
	}
	w("var writerOff = %s\n", intMatrix(writerOffs))
	w("var pi = %s\n\n", intVector(pi))

	// Placement table.
	w("var procOf = []int{")
	for i, p := range procOf {
		if i > 0 {
			w(",")
		}
		if i%24 == 0 {
			w("\n\t")
		} else if i > 0 {
			w(" ")
		}
		w("%d", p)
	}
	w("}\n\n")

	// Deterministic input function — verbatim semantics of
	// parser.InputValue.
	w(`func inputValue(v string, elem []int64) float64 {
	h := seed*0x9e3779b97f4a7c15 + 0xabcd
	for _, c := range v {
		h ^= uint64(c) * 0x100000001b3
	}
	for _, c := range elem {
		h ^= uint64(c+4096) * 0x100000001b3
		h = (h << 17) | (h >> 47)
	}
	return float64(h%%8192)/4096 - 1
}

func scalarValue(name string) float64 {
	return inputValue("$"+name, make([]int64, dims))
}

func div(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

var _ = div // some programs have no division

`)

	// Iteration-space enumeration with the real loop bounds.
	w("// forEach visits the index set in lexicographic order.\n")
	w("func forEach(visit func(x []int64)) {\n")
	w("\tx := make([]int64, dims)\n")
	indent := "\t"
	for j := 0; j < dims; j++ {
		lo := affineGo(prog.Nest.Lower[j])
		hi := affineGo(prog.Nest.Upper[j])
		w("%sfor x[%d] = %s; x[%d] <= %s; x[%d]++ {\n", indent, j, lo, j, hi, j)
		indent += "\t"
	}
	w("%svisit(append([]int64{}, x...))\n", indent)
	for j := dims - 1; j >= 0; j-- {
		indent = indent[:len(indent)-1]
		w("%s}\n", indent)
	}
	w("}\n\n")

	// compute: straight-line statement bodies.
	w("// compute executes one iteration; in[c] is the value arriving along\n")
	w("// channel c, the return value is what this iteration sends per channel.\n")
	w("func compute(x []int64, in []float64) []float64 {\n")
	for _, st := range prog.Stmts {
		w("\tv_%s := %s\n", st.Write.Var, exprGo(st.Expr, df))
	}
	for _, st := range prog.Stmts {
		w("\t_ = v_%s\n", st.Write.Var)
	}
	w("\treturn []float64{")
	for c, v := range df.ChanVars {
		if c > 0 {
			w(", ")
		}
		w("v_%s", v)
	}
	w("}\n}\n\n")

	// boundary: channel values entering at the index-set border.
	w(`// boundary supplies the channel value whose producing iteration lies
// outside the index set: element (x − d + w) of the channel's variable.
func boundary(x []int64, ch int) float64 {
	src := make([]int64, dims)
	for k := 0; k < dims; k++ {
		src[k] = x[k] - chanDeps[ch][k] + writerOff[ch][k]
	}
	return inputValue(chanVars[ch], src)
}

func key(x []int64) string {
	s := ""
	for i, v := range x {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%%d", v)
	}
	return s
}

func timeOf(x []int64) int64 {
	var t int64
	for k := 0; k < dims; k++ {
		t += pi[k] * x[k]
	}
	return t
}

func runSequential(points [][]int64, index map[string]int) [][]float64 {
	out := make([][]float64, len(points))
	in := make([]float64, numChans)
	for vi, x := range points {
		for c := 0; c < numChans; c++ {
			pred := make([]int64, dims)
			for k := 0; k < dims; k++ {
				pred[k] = x[k] - chanDeps[c][k]
			}
			if pidx, ok := index[key(pred)]; ok {
				in[c] = out[pidx][c]
			} else {
				in[c] = boundary(x, c)
			}
		}
		out[vi] = compute(x, in)
	}
	return out
}

type message struct {
	target int
	ch     int
	value  float64
}

func runParallel(points [][]int64, index map[string]int) [][]float64 {
	// Owned points per processor, ordered by hyperplane time.
	owned := make([][]int, numProcs)
	for vi := range points {
		p := procOf[vi]
		owned[p] = append(owned[p], vi)
	}
	for p := range owned {
		sort.Slice(owned[p], func(a, b int) bool {
			ta, tb := timeOf(points[owned[p][a]]), timeOf(points[owned[p][b]])
			if ta != tb {
				return ta < tb
			}
			return owned[p][a] < owned[p][b]
		})
	}
	// Size inboxes to the exact inbound counts so sends never block.
	inbound := make([]int, numProcs)
	succOf := make([][]int, len(points))
	for vi, x := range points {
		succOf[vi] = make([]int, numChans)
		for c := 0; c < numChans; c++ {
			succ := make([]int64, dims)
			for k := 0; k < dims; k++ {
				succ[k] = x[k] + chanDeps[c][k]
			}
			si, ok := index[key(succ)]
			if !ok {
				succOf[vi][c] = -1
				continue
			}
			succOf[vi][c] = si
			if procOf[si] != procOf[vi] {
				inbound[procOf[si]]++
			}
		}
	}
	inbox := make([]chan message, numProcs)
	for p := range inbox {
		inbox[p] = make(chan message, inbound[p])
	}
	out := make([][]float64, len(points))
	var wg sync.WaitGroup
	for p := 0; p < numProcs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			remote := map[int64]float64{}
			in := make([]float64, numChans)
			for _, vi := range owned[p] {
				x := points[vi]
				for c := 0; c < numChans; c++ {
					pred := make([]int64, dims)
					for k := 0; k < dims; k++ {
						pred[k] = x[k] - chanDeps[c][k]
					}
					pidx, ok := index[key(pred)]
					switch {
					case !ok:
						in[c] = boundary(x, c)
					case procOf[pidx] == p:
						in[c] = out[pidx][c]
					default:
						k := int64(vi)*numChans + int64(c)
						for {
							if v, hit := remote[k]; hit {
								in[c] = v
								delete(remote, k)
								break
							}
							m := <-inbox[p]
							remote[int64(m.target)*numChans+int64(m.ch)] = m.value
						}
					}
				}
				vals := compute(x, in)
				out[vi] = vals
				for c := 0; c < numChans; c++ {
					si := succOf[vi][c]
					if si < 0 || procOf[si] == p {
						continue
					}
					inbox[procOf[si]] <- message{target: si, ch: c, value: vals[c]}
				}
			}
		}(p)
	}
	wg.Wait()
	return out
}

func main() {
	var points [][]int64
	index := map[string]int{}
	forEach(func(x []int64) {
		index[key(x)] = len(points)
		points = append(points, x)
	})
	if len(points) != len(procOf) {
		fmt.Println("BAD placement size")
		os.Exit(1)
	}
	seq := runSequential(points, index)
	par := runParallel(points, index)
	sum := 0.0
	for vi := range seq {
		for c := range seq[vi] {
			if seq[vi][c] != par[vi][c] {
				fmt.Printf("MISMATCH at point %%v channel %%d: %%v vs %%v\n",
					points[vi], c, seq[vi][c], par[vi][c])
				os.Exit(1)
			}
			sum += seq[vi][c]
		}
	}
	fmt.Printf("OK %%.17g\n", sum)
}
`)
	return b.String(), nil
}

// intVector renders a vec.Int as a Go slice literal.
func intVector(v vec.Int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[]int64{" + strings.Join(parts, ", ") + "}"
}

// intMatrix renders a slice of vectors as a Go slice-of-slices literal.
func intMatrix(vs []vec.Int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = intVector(v)
	}
	return "[][]int64{" + strings.Join(parts, ", ") + "}"
}

// affineGo renders an affine bound as a Go expression over x.
func affineGo(a loop.Affine) string {
	s := fmt.Sprintf("int64(%d)", a.Const)
	for k, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		s += fmt.Sprintf(" + int64(%d)*x[%d]", c, k)
	}
	return s
}

// exprGo renders a statement expression as Go arithmetic.
func exprGo(e parser.Expr, df *parser.Dataflow) string {
	switch v := e.(type) {
	case *parser.NumLit:
		return fmt.Sprintf("float64(%d)", v.Val)
	case *parser.ScalarRef:
		return fmt.Sprintf("scalarValue(%q)", v.Name)
	case *parser.AccessRef:
		info := df.Reads[v]
		switch info.Kind {
		case parser.ReadLocal:
			return "v_" + v.Var
		case parser.ReadChan:
			return fmt.Sprintf("in[%d]", info.Ch)
		default:
			// Pure input: emit the affine subscripts as Go expressions.
			parts := make([]string, len(v.Subs))
			for k, a := range v.Subs {
				parts[k] = affineGo(a)
			}
			return fmt.Sprintf("inputValue(%q, []int64{%s})", v.Var, strings.Join(parts, ", "))
		}
	case *parser.Unary:
		return "(-" + exprGo(v.X, df) + ")"
	case *parser.Binary:
		l, r := exprGo(v.L, df), exprGo(v.R, df)
		if v.Op == '/' {
			return fmt.Sprintf("div(%s, %s)", l, r)
		}
		return fmt.Sprintf("(%s %c %s)", l, v.Op, r)
	default:
		return "0"
	}
}
