package project

import (
	"testing"

	"repro/internal/loop"
	"repro/internal/vec"
)

func l1Projected(t *testing.T) *Structure {
	t.Helper()
	n := loop.NewRect("L1", []int64{0, 0}, []int64{3, 3})
	st, err := loop.NewStructure(n, vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(st, vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func matmulProjected(t *testing.T, sz int64) *Structure {
	t.Helper()
	n := loop.NewRect("matmul", []int64{0, 0, 0}, []int64{sz - 1, sz - 1, sz - 1})
	st, err := loop.NewStructure(n, vec.NewInt(0, 1, 0), vec.NewInt(1, 0, 0), vec.NewInt(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(st, vec.NewInt(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestL1SevenProjectedPoints(t *testing.T) {
	// §II: "We get seven projected points" for loop L1 with Π=(1,1).
	ps := l1Projected(t)
	if len(ps.Points) != 7 {
		t.Fatalf("|V^p| = %d, want 7", len(ps.Points))
	}
	if ps.S != 2 {
		t.Fatalf("s = %d, want 2", ps.S)
	}
	// The paper lists V^p = {(-3/2,3/2), (-1,1), (-1/2,1/2), (0,0),
	// (1/2,-1/2), (1,-1), (3/2,-3/2)}; scaled by 2 these are:
	want := []vec.Int{
		vec.NewInt(-3, 3), vec.NewInt(-2, 2), vec.NewInt(-1, 1), vec.NewInt(0, 0),
		vec.NewInt(1, -1), vec.NewInt(2, -2), vec.NewInt(3, -3),
	}
	for _, w := range want {
		if !ps.HasPoint(w) {
			t.Errorf("missing projected point %v (scaled)", w)
		}
	}
}

func TestL1ProjectedDeps(t *testing.T) {
	ps := l1Projected(t)
	// d1=(0,1) -> (-1/2,1/2) scaled (-1,1), r=2
	// d2=(1,0) -> (1/2,-1/2) scaled (1,-1), r=2
	// d3=(1,1) -> (0,0), r=1
	got := map[string]int64{}
	for _, d := range ps.Deps {
		got[d.Scaled.Key()] = d.R
	}
	if got["-1,1"] != 2 || got["1,-1"] != 2 || got["0,0"] != 1 {
		t.Fatalf("projected deps/r wrong: %v", got)
	}
	if ps.GroupSizeR() != 2 {
		t.Fatalf("r = %d, want 2", ps.GroupSizeR())
	}
	if nz := ps.NonzeroDeps(); len(nz) != 2 {
		t.Fatalf("nonzero deps = %d, want 2", len(nz))
	}
}

func TestL1Fibers(t *testing.T) {
	ps := l1Projected(t)
	// The diagonal line through (0,0): points (0,0),(1,1),(2,2),(3,3).
	i := ps.IndexOf(vec.NewInt(0, 0))
	if i < 0 {
		t.Fatal("projected point (0,0) missing")
	}
	fib := ps.FiberPoints(i)
	if len(fib) != 4 {
		t.Fatalf("main diagonal fiber has %d points, want 4", len(fib))
	}
	for k, p := range fib {
		if !p.Equal(vec.NewInt(int64(k), int64(k))) {
			t.Errorf("fiber[%d] = %v, want (%d,%d)", k, p, k, k)
		}
	}
	// Total fiber sizes must cover all 16 points.
	total := 0
	for i := range ps.Points {
		total += len(ps.Fibers[i])
	}
	if total != 16 {
		t.Fatalf("fibers cover %d points, want 16", total)
	}
}

func TestFibersSortedByTime(t *testing.T) {
	ps := matmulProjected(t, 4)
	for i := range ps.Points {
		pts := ps.FiberPoints(i)
		for j := 1; j < len(pts); j++ {
			if ps.Pi.Dot(pts[j-1]) >= ps.Pi.Dot(pts[j]) {
				t.Fatalf("fiber %d not sorted by time: %v", i, pts)
			}
		}
	}
}

func TestMatMul37ProjectedPoints(t *testing.T) {
	// Fig. 5: "There are 37 projected points" for the 4×4×4 matmul.
	ps := matmulProjected(t, 4)
	if len(ps.Points) != 37 {
		t.Fatalf("|V^p| = %d, want 37", len(ps.Points))
	}
	if ps.S != 3 {
		t.Fatalf("s = %d, want 3", ps.S)
	}
}

func TestMatMulProjectedDeps(t *testing.T) {
	ps := matmulProjected(t, 4)
	// d_A=(0,1,0) -> (-1/3,2/3,-1/3), d_B=(1,0,0) -> (2/3,-1/3,-1/3),
	// d_C=(0,0,1) -> (-1/3,-1/3,2/3); all with r=3 (Step 1 of Example 2).
	wantScaled := map[string]bool{"-1,2,-1": true, "2,-1,-1": true, "-1,-1,2": true}
	for _, d := range ps.Deps {
		if !wantScaled[d.Scaled.Key()] {
			t.Errorf("unexpected scaled dep %v", d.Scaled)
		}
		if d.R != 3 {
			t.Errorf("r(%v) = %d, want 3", d.Scaled, d.R)
		}
	}
	if ps.GroupSizeR() != 3 {
		t.Fatalf("r = %d, want 3", ps.GroupSizeR())
	}
}

func TestProjectionOrthogonality(t *testing.T) {
	// Every scaled projected point must satisfy Π·p = 0 (it lies on the
	// zero-hyperplane), and projection must be reproducible via ProjectionOf.
	ps := matmulProjected(t, 4)
	for i, p := range ps.Points {
		if ps.Pi.Dot(p) != 0 {
			t.Fatalf("point %d = %v not on zero-hyperplane", i, p)
		}
	}
	for _, x := range ps.Orig.V {
		sp := ps.ProjectionOf(x)
		if !ps.HasPoint(sp) {
			t.Fatalf("projection of %v missing from V^p", x)
		}
	}
}

func TestFiberEquivalence(t *testing.T) {
	// Two index points share a fiber iff their difference is parallel to Π.
	ps := l1Projected(t)
	for i := range ps.Points {
		pts := ps.FiberPoints(i)
		for a := 0; a < len(pts); a++ {
			for b := a + 1; b < len(pts); b++ {
				d := pts[b].Sub(pts[a])
				// d must be t·Π for integer t (here Π=(1,1)).
				if d[0] != d[1] {
					t.Fatalf("fiber points %v,%v not aligned with Π", pts[a], pts[b])
				}
			}
		}
	}
}

func TestMatVecProjection(t *testing.T) {
	// §IV: matvec with Π=(1,1) has 2M-1 projected points and
	// D^p = {(1/2,-1/2), (-1/2,1/2)} with r=2.
	const m = 8
	n := loop.NewRect("matvec", []int64{1, 1}, []int64{m, m})
	st, err := loop.NewStructure(n, vec.NewInt(1, 0), vec.NewInt(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(st, vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Points) != 2*m-1 {
		t.Fatalf("|V^p| = %d, want %d", len(ps.Points), 2*m-1)
	}
	if ps.GroupSizeR() != 2 {
		t.Fatalf("r = %d, want 2", ps.GroupSizeR())
	}
}

func TestSkewedPiLargeRFactor(t *testing.T) {
	// Stencil dependences {(1,-1),(1,0),(1,1)} under the skewed Π = (2,1):
	// s = 5 and e.g. d=(1,0) projects to (1,-2)/5, needing r = 5 — a group
	// size the paper's own examples never exercise.
	n := loop.NewRect("stencil", []int64{0, 0}, []int64{5, 5})
	st, err := loop.NewStructure(n, vec.NewInt(1, -1), vec.NewInt(1, 0), vec.NewInt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(st, vec.NewInt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ps.S != 5 {
		t.Fatalf("s = %d, want 5", ps.S)
	}
	if r := ps.GroupSizeR(); r != 5 {
		t.Fatalf("r = %d, want 5", r)
	}
	// All projections stay on the zero-hyperplane.
	for _, p := range ps.Points {
		if ps.Pi.Dot(p) != 0 {
			t.Fatalf("point %v off the zero-hyperplane", p)
		}
	}
}

func TestProjectRejectsInvalidPi(t *testing.T) {
	n := loop.NewRect("L1", []int64{0, 0}, []int64{3, 3})
	st, err := loop.NewStructure(n, vec.NewInt(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Project(st, vec.NewInt(1, 0)); err == nil {
		t.Fatal("Π orthogonal to dependence accepted")
	}
	if _, err := Project(st, vec.NewInt(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestRatPointDisplay(t *testing.T) {
	ps := l1Projected(t)
	i := ps.IndexOf(vec.NewInt(-3, 3))
	if i < 0 {
		t.Fatal("point missing")
	}
	if got := ps.RatPoint(i).String(); got != "(-3/2, 3/2)" {
		t.Errorf("RatPoint = %q", got)
	}
}

func TestRFactorEdgeCases(t *testing.T) {
	// Dependence parallel to Π projects to zero and must get R == 1.
	if r := rFactor(vec.NewInt(0, 0), 2); r != 1 {
		t.Errorf("rFactor(0) = %d, want 1", r)
	}
	// Integral projection: scaled = s * integer vector.
	if r := rFactor(vec.NewInt(2, -2), 2); r != 1 {
		t.Errorf("rFactor(integral) = %d, want 1", r)
	}
	// Mixed: s=6, scaled=(3,2): components need 2 and 3 -> lcm 6.
	if r := rFactor(vec.NewInt(3, 2), 6); r != 6 {
		t.Errorf("rFactor((3,2)/6) = %d, want 6", r)
	}
}
