package core

import (
	"fmt"
	"sort"
)

// TIGEdge is one directed communication requirement between two blocks.
type TIGEdge struct {
	From, To int
	// Weight is the number of data items crossing the edge (one per
	// dependence arc between the blocks).
	Weight int64
}

// TIG is the Task Interaction Graph of §IV: vertices are partitioned
// blocks, edges carry the interblock communication volume.
type TIG struct {
	// N is the number of blocks (TIG vertices).
	N int
	// Loads[g] is the number of index points in block g (its computation
	// weight).
	Loads []int64
	// Edges holds the directed edges, sorted by (From, To).
	Edges []TIGEdge

	out map[int]map[int]int64
	// byDep[u][v][dep] breaks edge weights down by the dependence vector
	// (index into the structure's D) that carried them. Only filled by
	// BuildTIG; synthetic TIGs from NewTIG have no breakdown.
	byDep map[int]map[int]map[int]int64
}

// NewTIG builds a TIG directly from loads and edges — used for synthetic
// task graphs such as the 4×4 mesh of the paper's Example 3 (Fig. 8).
func NewTIG(n int, loads []int64, edges []TIGEdge) *TIG {
	t := &TIG{N: n, out: map[int]map[int]int64{}}
	t.Loads = make([]int64, n)
	copy(t.Loads, loads)
	for _, e := range edges {
		m, ok := t.out[e.From]
		if !ok {
			m = map[int]int64{}
			t.out[e.From] = m
		}
		m[e.To] += e.Weight
	}
	for u, m := range t.out {
		for v, w := range m {
			t.Edges = append(t.Edges, TIGEdge{From: u, To: v, Weight: w})
		}
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].From != t.Edges[j].From {
			return t.Edges[i].From < t.Edges[j].From
		}
		return t.Edges[i].To < t.Edges[j].To
	})
	return t
}

// BuildTIG constructs the TIG of a partitioning by classifying every
// dependence arc of the computational structure.
func BuildTIG(p *Partitioning) *TIG {
	t := &TIG{N: len(p.Groups), out: map[int]map[int]int64{}, byDep: map[int]map[int]map[int]int64{}}
	t.Loads = make([]int64, t.N)
	for g := range p.Groups {
		t.Loads[g] = int64(p.BlockSize(g))
	}
	p.PS.Orig.ForEachEdgeIdx(func(ui, vi, dep int) {
		gu := p.BlockOf[ui]
		gv := p.BlockOf[vi]
		if gu == gv {
			return
		}
		m, ok := t.out[gu]
		if !ok {
			m = map[int]int64{}
			t.out[gu] = m
		}
		m[gv]++
		mu, ok := t.byDep[gu]
		if !ok {
			mu = map[int]map[int]int64{}
			t.byDep[gu] = mu
		}
		mv, ok := mu[gv]
		if !ok {
			mv = map[int]int64{}
			mu[gv] = mv
		}
		mv[dep]++
	})
	for u, m := range t.out {
		for v, w := range m {
			t.Edges = append(t.Edges, TIGEdge{From: u, To: v, Weight: w})
		}
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].From != t.Edges[j].From {
			return t.Edges[i].From < t.Edges[j].From
		}
		return t.Edges[i].To < t.Edges[j].To
	})
	return t
}

// Weight returns the communication volume from block u to block v.
func (t *TIG) Weight(u, v int) int64 {
	if m, ok := t.out[u]; ok {
		return m[v]
	}
	return 0
}

// WeightByDep returns the volume from u to v carried by dependence dep
// (an index into the structure's D). Zero for synthetic TIGs.
func (t *TIG) WeightByDep(u, v, dep int) int64 {
	if mu, ok := t.byDep[u]; ok {
		if mv, ok := mu[v]; ok {
			return mv[dep]
		}
	}
	return 0
}

// DepBreakdown returns the per-dependence volumes from u to v (nil when
// there is no traffic or the TIG is synthetic). The returned map is a copy.
func (t *TIG) DepBreakdown(u, v int) map[int]int64 {
	mu, ok := t.byDep[u]
	if !ok {
		return nil
	}
	mv, ok := mu[v]
	if !ok {
		return nil
	}
	out := make(map[int]int64, len(mv))
	for k, w := range mv {
		out[k] = w
	}
	return out
}

// OutDegree returns the number of distinct blocks u sends data to.
func (t *TIG) OutDegree(u int) int { return len(t.out[u]) }

// MaxOutDegree returns the largest out-degree over all blocks. Theorem 2
// bounds it by 2m − β.
func (t *TIG) MaxOutDegree() int {
	mx := 0
	for u := 0; u < t.N; u++ {
		if d := t.OutDegree(u); d > mx {
			mx = d
		}
	}
	return mx
}

// TotalTraffic returns the sum of all edge weights (total interblock data
// items).
func (t *TIG) TotalTraffic() int64 {
	var s int64
	for _, e := range t.Edges {
		s += e.Weight
	}
	return s
}

// Successors returns the blocks u sends data to, sorted.
func (t *TIG) Successors(u int) []int {
	var out []int
	for v := range t.out[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// String summarizes the TIG.
func (t *TIG) String() string {
	return fmt.Sprintf("TIG{blocks: %d, edges: %d, traffic: %d, maxOutDeg: %d}",
		t.N, len(t.Edges), t.TotalTraffic(), t.MaxOutDegree())
}
