// Package fault describes deterministic fault injection for the
// simulator: node crashes, link failures, and per-message loss, together
// with the retry and checkpoint policies that bound their cost. A
// Schedule is pure data — the simulation engines (internal/sim) consume
// it, and the degraded-mode remapper (internal/mapping) consumes the
// static node/link failure sets — so the same schedule replays
// bit-identically for a fixed Seed.
//
// The fault model deliberately stays inside the paper's §IV cost
// accounting: a lost message costs its sender another t_start + k·t_comm
// transmission plus an exponential backoff expressed in t_start units; a
// failed link adds per-word store-and-forward detour cost; a crashed
// node's un-checkpointed work is replayed on the takeover node. Every
// fault only ever adds time, so a faulty run's makespan is bounded below
// by the fault-free run (asserted by the simulator's property tests).
package fault

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps every Schedule validation failure, so callers can
// classify a bad fault description (e.g. an HTTP 400) without string
// matching.
var ErrInvalid = errors.New("fault: invalid schedule")

// NodeCrash takes processor Node permanently offline at simulated time T.
// Work the node has not checkpointed by T is lost and must be replayed by
// the takeover node.
type NodeCrash struct {
	Node int
	T    float64
}

// LinkFailure takes the (undirected) physical link between nodes A and B
// offline at simulated time T. Messages injected at or after T that would
// cross the link pay a store-and-forward detour instead.
type LinkFailure struct {
	A, B int
	T    float64
}

// RetryPolicy bounds the cost of per-message loss: a lost transmission is
// retried after an exponential backoff, and the final attempt always
// delivers, so the policy caps the delay any single message can suffer.
type RetryPolicy struct {
	// MaxAttempts is the total number of transmission attempts per
	// message (the first send plus retries). 0 means the default, 3.
	MaxAttempts int
	// Backoff is the wait before the first retransmission, expressed in
	// t_start units; attempt k waits Backoff·2^(k−1)·t_start. 0 means the
	// default, 1.
	Backoff float64
}

// defaultMaxAttempts and defaultBackoff are the RetryPolicy zero-value
// resolutions.
const (
	defaultMaxAttempts = 3
	defaultBackoff     = 1.0
)

// Checkpoint is the checkpoint/restart cost model: blocks checkpoint at
// hyperplane-step boundaries, so a crash loses only the work since the
// last boundary.
type Checkpoint struct {
	// EverySteps checkpoints after every EverySteps hyperplane steps;
	// 0 disables checkpointing (a crash then loses all work the node has
	// done).
	EverySteps int
	// Cost is the time a processor spends writing one checkpoint (charged
	// only to processors that did work since the previous boundary).
	Cost float64
	// RestartCost is the fixed time the takeover node spends restoring
	// the dead node's last checkpoint before replaying lost work.
	RestartCost float64
}

// Schedule is a complete deterministic fault-injection description. The
// zero value injects nothing and is a strict no-op for the simulator.
type Schedule struct {
	// Seed drives the per-message loss decisions; identical seeds replay
	// identical loss patterns.
	Seed uint64
	// Crashes lists node crashes (at most one per node).
	Crashes []NodeCrash
	// LinkFailures lists physical link failures.
	LinkFailures []LinkFailure
	// LossProb is the probability in [0, 1] that any single message
	// transmission is lost and must be retried.
	LossProb float64
	// Retry bounds the loss retries.
	Retry RetryPolicy
	// Checkpoint is the checkpoint/restart cost model.
	Checkpoint Checkpoint
}

// Empty reports whether the schedule injects nothing at all — no crashes,
// no link failures, no loss, and no checkpoint overhead. The simulator
// treats an empty schedule exactly like a nil one.
func (s *Schedule) Empty() bool {
	if s == nil {
		return true
	}
	return len(s.Crashes) == 0 && len(s.LinkFailures) == 0 &&
		s.LossProb == 0 && s.Checkpoint.EverySteps == 0
}

// MaxAttempts resolves the retry policy's attempt bound.
func (s *Schedule) MaxAttempts() int {
	if s.Retry.MaxAttempts > 0 {
		return s.Retry.MaxAttempts
	}
	return defaultMaxAttempts
}

// BackoffStarts resolves the retry policy's initial backoff, in t_start
// units.
func (s *Schedule) BackoffStarts() float64 {
	if s.Retry.Backoff > 0 {
		return s.Retry.Backoff
	}
	return defaultBackoff
}

// Validate rejects malformed schedules with actionable messages; every
// error wraps ErrInvalid. numProcs > 0 additionally range-checks node
// addresses against the machine; pass 0 when the machine size is not yet
// known.
func (s *Schedule) Validate(numProcs int) error {
	if s == nil {
		return nil
	}
	if s.LossProb < 0 || s.LossProb > 1 {
		return fmt.Errorf("%w: LossProb %v outside [0, 1]", ErrInvalid, s.LossProb)
	}
	if s.Retry.MaxAttempts < 0 {
		return fmt.Errorf("%w: negative Retry.MaxAttempts %d (0 means the default %d)", ErrInvalid, s.Retry.MaxAttempts, defaultMaxAttempts)
	}
	if s.Retry.Backoff < 0 {
		return fmt.Errorf("%w: negative Retry.Backoff %v (0 means the default %v t_start)", ErrInvalid, s.Retry.Backoff, defaultBackoff)
	}
	ck := s.Checkpoint
	if ck.EverySteps < 0 {
		return fmt.Errorf("%w: negative Checkpoint.EverySteps %d (0 disables checkpointing)", ErrInvalid, ck.EverySteps)
	}
	if ck.Cost < 0 || ck.RestartCost < 0 {
		return fmt.Errorf("%w: negative checkpoint cost (Cost %v, RestartCost %v)", ErrInvalid, ck.Cost, ck.RestartCost)
	}
	if (ck.Cost > 0 || ck.RestartCost > 0) && ck.EverySteps == 0 && len(s.Crashes) == 0 {
		return fmt.Errorf("%w: checkpoint costs set but EverySteps is 0 and no node crashes are scheduled (set EverySteps, or drop the costs)", ErrInvalid)
	}
	seen := make(map[int]bool, len(s.Crashes))
	for _, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("%w: crash of negative node %d", ErrInvalid, c.Node)
		}
		if numProcs > 0 && c.Node >= numProcs {
			return fmt.Errorf("%w: crash of node %d on a %d-processor machine", ErrInvalid, c.Node, numProcs)
		}
		if c.T < 0 {
			return fmt.Errorf("%w: crash of node %d at negative time %v", ErrInvalid, c.Node, c.T)
		}
		if seen[c.Node] {
			return fmt.Errorf("%w: node %d crashes twice", ErrInvalid, c.Node)
		}
		seen[c.Node] = true
	}
	if numProcs > 0 && len(seen) >= numProcs {
		return fmt.Errorf("%w: all %d processors crash — no takeover node survives", ErrInvalid, numProcs)
	}
	for _, l := range s.LinkFailures {
		if l.A < 0 || l.B < 0 {
			return fmt.Errorf("%w: link failure with negative endpoint (%d, %d)", ErrInvalid, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("%w: link failure with identical endpoints (%d, %d)", ErrInvalid, l.A, l.B)
		}
		if numProcs > 0 && (l.A >= numProcs || l.B >= numProcs) {
			return fmt.Errorf("%w: link failure (%d, %d) on a %d-processor machine", ErrInvalid, l.A, l.B, numProcs)
		}
		if l.T < 0 {
			return fmt.Errorf("%w: link failure (%d, %d) at negative time %v", ErrInvalid, l.A, l.B, l.T)
		}
	}
	return nil
}

// FailedNodes returns the distinct crashed node ids, in schedule order.
func (s *Schedule) FailedNodes() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, len(s.Crashes))
	for _, c := range s.Crashes {
		out = append(out, c.Node)
	}
	return out
}

// RNG is a splitmix64 generator: tiny, allocation-free, and fully
// deterministic for a fixed seed. Both simulation engines consume loss
// decisions from one sequential stream; because they process message
// sends in the identical global order, a fixed seed reproduces the same
// loss pattern on either engine.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}
