// Command crashtest is the kill/restart chaos harness for loopmapd's
// durable plan store.
//
// It builds the daemon, starts it with a durable -state-dir (fsync
// always), drives concurrent mixed /v1/plan + /v1/simulate load through
// the resilient client, SIGKILLs the process mid-write, restarts it from
// the same state directory, and then asserts the crash-safety contract:
//
//   - every request that succeeded before the kill is served warm
//     (cache outcome "hit") by the restarted daemon;
//   - its response is byte-identical to the pre-crash one (modulo the
//     cache field itself);
//   - no response, before or after the crash, is ever corrupt;
//   - the restarted daemon still shuts down cleanly on SIGTERM.
//
// The workload is generated from -seed, so a run is reproducible. CI
// runs a short deterministic version (`make crash`).
//
//	crashtest -requests 64 -seed 1
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/client"
)

func main() {
	bin := flag.String("bin", "", "loopmapd binary (default: go build it to a temp dir)")
	stateDir := flag.String("state-dir", "", "durable state directory (default: a temp dir, removed on success)")
	requests := flag.Int("requests", 64, "total requests in the mixed load")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	seed := flag.Int64("seed", 1, "workload generator seed (runs are reproducible per seed)")
	keep := flag.Bool("keep", false, "keep the state directory after a successful run")
	flag.Parse()

	if err := run(*bin, *stateDir, *requests, *workers, *seed, *keep); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("crashtest: PASS")
}

func run(bin, stateDir string, requests, workers int, seed int64, keep bool) error {
	if requests < 8 {
		return fmt.Errorf("need at least 8 requests, got %d", requests)
	}
	if bin == "" {
		built, cleanup, err := buildDaemon()
		if err != nil {
			return err
		}
		defer cleanup()
		bin = built
	}
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "crashtest-state-*")
		if err != nil {
			return err
		}
		stateDir = dir
		if !keep {
			defer os.RemoveAll(dir)
		}
	}
	fmt.Printf("crashtest: state dir %s, %d requests, seed %d\n", stateDir, requests, seed)

	// --- Phase 1: cold daemon under load, SIGKILLed mid-write. ---
	d, err := startDaemon(bin, stateDir)
	if err != nil {
		return fmt.Errorf("phase 1 start: %w", err)
	}
	defer d.kill() // no-op once the process is gone

	c1 := newClient(d.addr)
	if err := waitReady(c1); err != nil {
		return fmt.Errorf("phase 1 ready: %w", err)
	}

	load := generateWorkload(requests, seed)
	rec := &recorder{byKey: make(map[string]recorded)}
	killAt := requests / 2
	killed := make(chan struct{})
	var killOnce sync.Once

	var wg sync.WaitGroup
	items := make(chan workItem)
	var done, failed atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				err := issue(c1, it, rec)
				if err != nil {
					failed.Add(1)
				}
				if int(done.Add(1)) >= killAt {
					killOnce.Do(func() {
						fmt.Printf("crashtest: SIGKILL after %d/%d requests\n", done.Load(), requests)
						d.kill()
						close(killed)
					})
				}
			}
		}()
	}
	for _, it := range load {
		items <- it
	}
	close(items)
	wg.Wait()
	<-killed // the pool finished, so the kill must have fired

	pre := rec.snapshot()
	fmt.Printf("crashtest: pre-kill: %d ok (%d unique responses recorded), %d failed after the kill window\n",
		done.Load()-failed.Load(), len(pre), failed.Load())
	if len(pre) == 0 {
		return fmt.Errorf("no request succeeded before the kill — nothing to verify")
	}

	// --- Phase 2: restart from the same state dir; assert warm identity. ---
	d2, err := startDaemon(bin, stateDir)
	if err != nil {
		return fmt.Errorf("phase 2 start: %w", err)
	}
	defer d2.kill()
	c2 := newClient(d2.addr)
	if err := waitReady(c2); err != nil {
		return fmt.Errorf("phase 2 ready: %w", err)
	}
	if warm := d2.warmLine(); warm != "" {
		fmt.Println("crashtest:", warm)
	}

	var coldMisses, mismatches int
	for key, want := range pre {
		got, outcome, err := reissue(c2, want.item)
		if err != nil {
			return fmt.Errorf("replaying %s after restart: %w", key, err)
		}
		if outcome != client.CacheHit {
			coldMisses++
			fmt.Fprintf(os.Stderr, "crashtest: COLD after restart (%s): %s\n", outcome, key)
		}
		if !reflect.DeepEqual(got, want.response) {
			mismatches++
			fmt.Fprintf(os.Stderr, "crashtest: MISMATCH after restart: %s\n  pre:  %+v\n  post: %+v\n", key, want.response, got)
		}
	}
	fmt.Printf("crashtest: post-restart: %d/%d warm and identical\n", len(pre)-coldMisses-mismatches, len(pre))
	if coldMisses > 0 {
		return fmt.Errorf("%d pre-kill responses were not warm after restart", coldMisses)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d responses changed across the crash", mismatches)
	}

	// --- Phase 3: the survivor still dies gracefully. ---
	if err := d2.terminate(15 * time.Second); err != nil {
		return fmt.Errorf("phase 3 graceful stop: %w", err)
	}
	st := c2.Stats()
	fmt.Printf("crashtest: client stats: attempts=%d retries=%d failures=%d breaker=%s\n",
		st.Attempts, st.Retries, st.Failures, st.BreakerState)
	if keep {
		fmt.Printf("crashtest: state kept in %s\n", stateDir)
	}
	return nil
}

// --- workload ---

// workItem is one deterministic request: a plan, or a plan + simulate.
type workItem struct {
	simulate bool
	plan     client.PlanRequest
	era      string
	engine   string
}

// key canonicalizes the item for the identity map.
func (w workItem) key() string {
	cube := -2
	if w.plan.CubeDim != nil {
		cube = *w.plan.CubeDim
	}
	return fmt.Sprintf("sim=%t era=%s eng=%s kernel=%s size=%d cube=%d pi=%v search=%t bound=%d merge=%d noaux=%t choice=%d",
		w.simulate, w.era, w.engine, w.plan.Kernel, w.plan.Size, cube, w.plan.Pi,
		w.plan.SearchPi, w.plan.SearchBound, w.plan.MergeFactor, w.plan.NoAux, w.plan.GroupingChoice)
}

// generateWorkload derives a reproducible mixed load from seed. Kernels
// and sizes repeat, so the load exercises hits, misses, and shared
// in-flight computations at once.
func generateWorkload(n int, seed int64) []workItem {
	rng := rand.New(rand.NewSource(seed))
	kernels := []string{"l1", "matmul", "matvec", "stencil", "sor2d", "convolution"}
	sizes := []int64{4, 6, 8, 10, 12}
	var out []workItem
	for i := 0; i < n; i++ {
		it := workItem{
			plan: client.PlanRequest{
				Kernel: kernels[rng.Intn(len(kernels))],
				Size:   sizes[rng.Intn(len(sizes))],
			},
		}
		cube := rng.Intn(4) + 1
		it.plan.CubeDim = &cube
		switch rng.Intn(4) {
		case 0:
			it.plan.SearchPi = true
		case 1:
			it.plan.MergeFactor = int64(rng.Intn(2) + 2)
		case 2:
			it.plan.NoAux = true
		}
		if rng.Intn(3) == 0 {
			it.simulate = true
			it.era = []string{"1991", "unit", "balanced"}[rng.Intn(3)]
			it.engine = []string{"block", "point"}[rng.Intn(2)]
		}
		out = append(out, it)
	}
	return out
}

// recorded is a pre-kill success: the item and its response with the
// cache field zeroed (it legitimately differs across the restart).
type recorded struct {
	item     workItem
	response any
}

type recorder struct {
	mu    sync.Mutex
	byKey map[string]recorded
}

func (r *recorder) put(key string, rec recorded) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byKey[key] = rec
}

func (r *recorder) snapshot() map[string]recorded {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]recorded, len(r.byKey))
	for k, v := range r.byKey {
		out[k] = v
	}
	return out
}

// issue fires one item and records a normalized copy of a successful
// response. Failures are expected once the daemon has been killed.
func issue(c *client.Client, it workItem, rec *recorder) error {
	resp, _, err := reissue(c, it)
	if err != nil {
		return err
	}
	rec.put(it.key(), recorded{item: it, response: resp})
	return nil
}

// reissue fires one item and returns (normalized response, cache
// outcome). The normalized response has Cache cleared so pre- and
// post-crash copies compare equal iff the payload is identical.
func reissue(c *client.Client, it workItem) (any, client.CacheOutcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if it.simulate {
		resp, err := c.Simulate(ctx, &client.SimulateRequest{PlanRequest: it.plan, Era: it.era, Engine: it.engine})
		if err != nil {
			return nil, "", err
		}
		outcome := resp.Cache
		resp.Cache = ""
		return *resp, outcome, nil
	}
	resp, err := c.Plan(ctx, &it.plan)
	if err != nil {
		return nil, "", err
	}
	outcome := resp.Cache
	resp.Cache = ""
	return *resp, outcome, nil
}

func newClient(addr string) *client.Client {
	return client.New(client.Config{
		BaseURL:     "http://" + addr,
		MaxRetries:  2,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		// The load deliberately keeps failing after the SIGKILL; a low
		// threshold would just turn those into breaker rejects.
		BreakerThreshold: 1 << 30,
	})
}

func waitReady(c *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Ready(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon never became ready: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// --- daemon management ---

var (
	listenRe = regexp.MustCompile(`msg=listening addr=([\d.:]+)`)
	warmRe   = regexp.MustCompile(`msg="warm start".*`)
)

type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	warm string
}

// startDaemon launches loopmapd on an ephemeral port with a durable
// store (fsync always: a response must never outlive its WAL record) and
// scrapes the listen address — and later the warm-start line — from its
// structured log.
func startDaemon(bin, stateDir string) (*daemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-fsync", "always",
		"-drain", "10s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if warmRe.MatchString(line) {
				d.mu.Lock()
				d.warm = line
				d.mu.Unlock()
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
		return d, nil
	case <-time.After(10 * time.Second):
		d.kill()
		return nil, fmt.Errorf("daemon never logged its listen address")
	}
}

func (d *daemon) warmLine() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.warm
}

// kill SIGKILLs the daemon — the crash under test.
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// terminate asks for a graceful SIGTERM shutdown and requires a clean
// exit within the grace period.
func (d *daemon) terminate(grace time.Duration) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(grace):
		d.kill()
		return fmt.Errorf("daemon ignored SIGTERM for %v", grace)
	}
}

// buildDaemon compiles cmd/loopmapd into a temp dir.
func buildDaemon() (string, func(), error) {
	dir, err := os.MkdirTemp("", "crashtest-bin-*")
	if err != nil {
		return "", nil, err
	}
	out := filepath.Join(dir, "loopmapd")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/loopmapd")
	if b, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building loopmapd: %v\n%s", err, strings.TrimSpace(string(b)))
	}
	return out, func() { os.RemoveAll(dir) }, nil
}
