package loop

import (
	"testing"

	"repro/internal/vec"
)

// l1Nest builds loop (L1) from Example 1 of the paper:
//
//	for i = 0 to 3 { for j = 0 to 3 {
//	  S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
//	  S2: B[i+1,j]   := A[i,j]*2 + C;
//	}}
func l1Nest() *Nest {
	n := NewRect("L1", []int64{0, 0}, []int64{3, 3})
	n.Stmts = []Stmt{
		{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(1, 1)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(1, 0)}, {Var: "B", Offset: vec.NewInt(0, 0)}},
			Ops:    1,
		},
		{
			Label:  "S2",
			Writes: []Access{{Var: "B", Offset: vec.NewInt(1, 0)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(0, 0)}},
			Ops:    1,
		},
	}
	return n
}

func TestL1Dependences(t *testing.T) {
	// The paper derives D = {(0,1), (1,1), (1,0)} for loop L1.
	deps := l1Nest().Dependences()
	want := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0), vec.NewInt(1, 1)}
	if len(deps) != len(want) {
		t.Fatalf("got %d deps %v, want %d", len(deps), deps, len(want))
	}
	for i := range want {
		if !deps[i].Equal(want[i]) {
			t.Errorf("dep[%d] = %v, want %v", i, deps[i], want[i])
		}
	}
}

func TestL1DependenceProvenance(t *testing.T) {
	infos := l1Nest().DependenceDetails()
	// Expect: A from S1 to S1 (0,1); A from S1 to S2 (1,1); B from S2 to S1 (1,0).
	type key struct{ v, varname, from, to string }
	got := map[key]bool{}
	for _, in := range infos {
		got[key{in.Vector.Key(), in.Var, in.FromStmt, in.ToStmt}] = true
	}
	wants := []key{
		{"0,1", "A", "S1", "S1"},
		{"1,1", "A", "S1", "S2"},
		{"1,0", "B", "S2", "S1"},
	}
	for _, w := range wants {
		if !got[w] {
			t.Errorf("missing dependence %+v (have %v)", w, infos)
		}
	}
	if len(infos) != len(wants) {
		t.Errorf("got %d dependences, want %d: %v", len(infos), len(wants), infos)
	}
}

func TestMatVecDependences(t *testing.T) {
	// Loop L5 (rewritten matvec): x carries (1,0), y carries (0,1).
	n := NewRect("L5", []int64{1, 1}, []int64{4, 4})
	n.Stmts = []Stmt{
		{
			Label:  "x-pipe",
			Writes: []Access{{Var: "x", Offset: vec.NewInt(0, 0)}},
			Reads:  []Access{{Var: "x", Offset: vec.NewInt(-1, 0)}},
		},
		{
			Label:  "y-acc",
			Writes: []Access{{Var: "y", Offset: vec.NewInt(0, 0)}},
			Reads:  []Access{{Var: "y", Offset: vec.NewInt(0, -1)}, {Var: "x", Offset: vec.NewInt(0, 0)}},
			Ops:    2,
		},
	}
	deps := n.Dependences()
	want := []vec.Int{vec.NewInt(0, 1), vec.NewInt(1, 0)}
	if len(deps) != 2 || !deps[0].Equal(want[0]) || !deps[1].Equal(want[1]) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
	if n.OpsPerIteration() != 3 {
		t.Errorf("OpsPerIteration = %d", n.OpsPerIteration())
	}
}

func TestRectEnumeration(t *testing.T) {
	n := NewRect("r", []int64{0, 1}, []int64{1, 2})
	pts := n.Points()
	want := []vec.Int{
		vec.NewInt(0, 1), vec.NewInt(0, 2), vec.NewInt(1, 1), vec.NewInt(1, 2),
	}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if n.Size() != 4 {
		t.Errorf("Size = %d", n.Size())
	}
}

func TestTriangularBounds(t *testing.T) {
	// for i = 0..3; for j = 0..i  — triangular set of 10 points.
	n := &Nest{
		Name:  "tri",
		Dims:  2,
		Lower: []Affine{Const(0), Const(0)},
		Upper: []Affine{Const(3), {Const: 0, Coeffs: []int64{1, 0}}},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 10 {
		t.Fatalf("Size = %d, want 10", n.Size())
	}
	if !n.Contains(vec.NewInt(3, 3)) || n.Contains(vec.NewInt(2, 3)) {
		t.Error("Contains wrong for triangular set")
	}
}

func TestValidateRejectsInnerReference(t *testing.T) {
	n := &Nest{
		Name:  "bad",
		Dims:  2,
		Lower: []Affine{{Const: 0, Coeffs: []int64{0, 1}}, Const(0)},
		Upper: []Affine{Const(3), Const(3)},
	}
	if err := n.Validate(); err == nil {
		t.Fatal("bound referencing inner index must be rejected")
	}
}

func TestValidateRejectsBadAccess(t *testing.T) {
	n := NewRect("bad", []int64{0}, []int64{3})
	n.Stmts = []Stmt{{Label: "s", Writes: []Access{{Var: "A", Offset: vec.NewInt(0, 0)}}}}
	if err := n.Validate(); err == nil {
		t.Fatal("access arity mismatch must be rejected")
	}
}

func TestValidateRejectsZeroDims(t *testing.T) {
	n := &Nest{Name: "empty", Dims: 0}
	if err := n.Validate(); err == nil {
		t.Fatal("zero-depth nest must be rejected")
	}
}

func TestEmptyRange(t *testing.T) {
	n := NewRect("empty", []int64{3}, []int64{2})
	if n.Size() != 0 {
		t.Fatalf("Size = %d, want 0", n.Size())
	}
}

func TestStructureL1(t *testing.T) {
	s, err := NewStructure(l1Nest())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.V) != 16 {
		t.Fatalf("|V| = %d, want 16", len(s.V))
	}
	if len(s.D) != 3 {
		t.Fatalf("|D| = %d, want 3", len(s.D))
	}
	// The paper counts 33 data dependencies for loop L1 (Fig. 3 discussion):
	// 12 along (0,1), 9 along (1,1), 12 along (1,0).
	if got := s.EdgeCount(); got != 33 {
		t.Fatalf("EdgeCount = %d, want 33", got)
	}
}

func TestStructureEdgeEndpointsInside(t *testing.T) {
	s, err := NewStructure(l1Nest())
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachEdge(func(e Edge) {
		if !s.HasVertex(e.From) || !s.HasVertex(e.To) {
			t.Fatalf("edge %v -> %v leaves the index set", e.From, e.To)
		}
		if !e.To.Sub(e.From).Equal(s.D[e.Dep]) {
			t.Fatalf("edge %v -> %v does not match dep %v", e.From, e.To, s.D[e.Dep])
		}
	})
}

func TestStructureExplicitDeps(t *testing.T) {
	n := NewRect("mm", []int64{0, 0, 0}, []int64{3, 3, 3})
	s, err := NewStructure(n, vec.NewInt(0, 1, 0), vec.NewInt(1, 0, 0), vec.NewInt(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.V) != 64 || len(s.D) != 3 {
		t.Fatalf("|V|=%d |D|=%d", len(s.V), len(s.D))
	}
	// 3 * 48 = 144 edges (each dep valid on a 4x4x3 sub-box).
	if got := s.EdgeCount(); got != 144 {
		t.Fatalf("EdgeCount = %d, want 144", got)
	}
}

func TestStructureRejectsZeroDep(t *testing.T) {
	n := NewRect("z", []int64{0}, []int64{1})
	if _, err := NewStructure(n, vec.NewInt(0)); err == nil {
		t.Fatal("zero dependence vector must be rejected")
	}
}

func TestStructureRejectsArityMismatch(t *testing.T) {
	n := NewRect("z", []int64{0}, []int64{1})
	if _, err := NewStructure(n, vec.NewInt(1, 0)); err == nil {
		t.Fatal("dependence arity mismatch must be rejected")
	}
}

func TestVertexIndex(t *testing.T) {
	s, err := NewStructure(l1Nest())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.V {
		if s.VertexIndex(p) != i {
			t.Fatalf("VertexIndex(%v) = %d, want %d", p, s.VertexIndex(p), i)
		}
	}
	if s.VertexIndex(vec.NewInt(9, 9)) != -1 {
		t.Error("VertexIndex of outside point should be -1")
	}
}

func TestVertexIndexNonRectangular(t *testing.T) {
	// Triangular bounds force the map-based index path.
	n := &Nest{
		Name:  "tri",
		Dims:  2,
		Lower: []Affine{Const(0), Const(0)},
		Upper: []Affine{Const(3), {Const: 0, Coeffs: []int64{1, 0}}},
	}
	st, err := NewStructure(n, vec.NewInt(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range st.V {
		if st.VertexIndex(p) != i {
			t.Fatalf("VertexIndex(%v) = %d, want %d", p, st.VertexIndex(p), i)
		}
	}
	if st.VertexIndex(vec.NewInt(1, 3)) != -1 {
		t.Fatal("outside point should be -1")
	}
	if st.VertexIndex(vec.NewInt(1)) != -1 {
		t.Fatal("arity mismatch should be -1")
	}
	if st.Dim() != 2 {
		t.Fatalf("Dim = %d", st.Dim())
	}
}

func TestVertexIndexRectangularBounds(t *testing.T) {
	// The arithmetic indexer must reject every out-of-box probe and agree
	// with enumeration on every inside point.
	n := NewRect("box", []int64{-1, 2}, []int64{2, 4})
	st, err := NewStructure(n, vec.NewInt(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range st.V {
		if st.VertexIndex(p) != i {
			t.Fatalf("VertexIndex(%v) = %d, want %d", p, st.VertexIndex(p), i)
		}
	}
	for _, out := range []vec.Int{
		vec.NewInt(-2, 3), vec.NewInt(3, 3), vec.NewInt(0, 1), vec.NewInt(0, 5),
	} {
		if st.VertexIndex(out) != -1 {
			t.Fatalf("VertexIndex(%v) should be -1", out)
		}
	}
}

func TestOpsPerIterationDefaults(t *testing.T) {
	n := NewRect("d", []int64{0}, []int64{1})
	// No statements at all: defaults to 1.
	if n.OpsPerIteration() != 1 {
		t.Fatalf("OpsPerIteration = %d", n.OpsPerIteration())
	}
	n.Stmts = []Stmt{{Label: "s"}} // zero Ops counts as 1
	if n.OpsPerIteration() != 1 {
		t.Fatalf("OpsPerIteration = %d", n.OpsPerIteration())
	}
}

func TestContainsArityMismatch(t *testing.T) {
	n := NewRect("c", []int64{0, 0}, []int64{1, 1})
	if n.Contains(vec.NewInt(0)) {
		t.Fatal("wrong arity should not be contained")
	}
}

func TestAffineString(t *testing.T) {
	a := Affine{Const: 2, Coeffs: []int64{0, -1}}
	if a.String() != "2-1*I2" {
		t.Errorf("String = %q", a.String())
	}
	if !Const(5).IsConst() || a.IsConst() {
		t.Error("IsConst wrong")
	}
}
