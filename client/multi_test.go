package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// fakeShards emulates an n-shard loopmapd cluster: each fake serves
// /v1/plan with truthful cluster metadata (its own shard ID, the owner
// under the current alive set) and /v1/cluster with the live membership
// table — enough surface for the Multi's routing to be observable.
type fakeShards struct {
	mu      sync.Mutex
	urls    []string
	alive   []bool
	hits    []int // /v1/plan requests served, per shard
	batches []int // /v1/batch requests served, per shard
	tss     []*httptest.Server
}

func newFakeShards(t *testing.T, n int) *fakeShards {
	t.Helper()
	f := &fakeShards{
		urls:    make([]string, n),
		alive:   make([]bool, n),
		hits:    make([]int, n),
		batches: make([]int, n),
		tss:     make([]*httptest.Server, n),
	}
	for i := 0; i < n; i++ {
		i := i
		f.alive[i] = true
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
			var req PlanRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Kernel == "bogus" {
				http.Error(w, "bad request", http.StatusBadRequest)
				return
			}
			key := serve.CanonicalPlanKey(&req)
			f.mu.Lock()
			f.hits[i]++
			// Mirror the daemon: HRW primary over the full roster,
			// redirected along the Gray ring while the primary is dead.
			all := make([]int, n)
			for id := range all {
				all[id] = id
			}
			owner := cluster.ServingOwner(key, all, func(id int) bool { return f.alive[id] })
			f.mu.Unlock()
			json.NewEncoder(w).Encode(PlanResponse{
				Kernel:  req.Kernel,
				Size:    req.Size,
				Cache:   CacheMiss,
				Cluster: &ClusterInfo{Shard: i, Owner: owner, Hops: 0},
			})
		})
		mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
			var req BatchRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, "bad request", http.StatusBadRequest)
				return
			}
			f.mu.Lock()
			f.batches[i]++
			f.mu.Unlock()
			out := BatchResponse{Results: make([]BatchItemResult, len(req.Items))}
			for j, it := range req.Items {
				if it.Plan == nil {
					out.Results[j] = BatchItemResult{Status: http.StatusBadRequest, Error: "plan only"}
					continue
				}
				// A real daemon attaches no cluster metadata to batch items;
				// the fake does, so tests can see which shard served what.
				body, _ := json.Marshal(PlanResponse{
					Kernel:  it.Plan.Kernel,
					Size:    it.Plan.Size,
					Cache:   CacheMiss,
					Cluster: &ClusterInfo{Shard: i},
				})
				out.Results[j] = BatchItemResult{Status: http.StatusOK, Body: body}
			}
			json.NewEncoder(w).Encode(out)
		})
		mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
			f.mu.Lock()
			st := ClusterStatus{Self: i, N: n, Dim: 2}
			for id := 0; id < n; id++ {
				st.Shards = append(st.Shards, PeerStatus{
					ID: id, URL: f.urls[id], Alive: f.alive[id], Self: id == i,
				})
			}
			f.mu.Unlock()
			json.NewEncoder(w).Encode(st)
		})
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		f.tss[i] = httptest.NewServer(mux)
		f.urls[i] = f.tss[i].URL
		t.Cleanup(f.tss[i].Close)
	}
	return f
}

func (f *fakeShards) aliveIDsLocked() []int {
	var ids []int
	for id, a := range f.alive {
		if a {
			ids = append(ids, id)
		}
	}
	return ids
}

func (f *fakeShards) hitCount(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[i]
}

// kill closes a fake shard's listener and marks it dead in the
// survivors' membership tables.
func (f *fakeShards) kill(i int) {
	f.tss[i].Close()
	f.mu.Lock()
	f.alive[i] = false
	f.mu.Unlock()
}

func newTestMulti(t *testing.T, f *fakeShards, mutate func(*MultiConfig)) *Multi {
	t.Helper()
	cfg := MultiConfig{
		Endpoints: f.urls,
		Config: Config{
			MaxRetries:       -1, // failover handles redundancy, not retries
			BreakerThreshold: 1,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiOwnerAffinity(t *testing.T) {
	f := newFakeShards(t, 3)
	m := newTestMulti(t, f, nil)
	ctx := context.Background()

	// The first call round-robins blind, then learns the shard map.
	if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: 4}); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().MapRefreshes; got != 1 {
		t.Fatalf("map refreshes after first call = %d, want 1", got)
	}

	// Every subsequent call must land directly on its key's owner.
	affine := 0
	for size := int64(4); size <= 24; size++ {
		req := &PlanRequest{Kernel: "l1", Size: size}
		want := cluster.Owner(serve.CanonicalPlanKey(req), []int{0, 1, 2})
		pr, err := m.Plan(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Cluster.Shard != want {
			t.Fatalf("size %d served by shard %d, want owner %d", size, pr.Cluster.Shard, want)
		}
		affine++
	}
	st := m.Stats()
	if st.OwnerRouted < int64(affine) {
		t.Fatalf("owner_routed = %d, want ≥ %d", st.OwnerRouted, affine)
	}
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 with all shards healthy", st.Failovers)
	}
	if len(st.PerEndpoint) != 3 {
		t.Fatalf("per-endpoint stats for %d endpoints, want 3", len(st.PerEndpoint))
	}
	var perTotal int64
	for _, es := range st.PerEndpoint {
		perTotal += es.Requests
	}
	if perTotal != st.Requests {
		t.Fatalf("per-endpoint requests sum to %d, aggregate says %d", perTotal, st.Requests)
	}
}

func TestMultiFailoverAndRehome(t *testing.T) {
	f := newFakeShards(t, 3)
	m := newTestMulti(t, f, nil)
	ctx := context.Background()

	// Learn the healthy map, then find a key owned by shard 2.
	if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: 4}); err != nil {
		t.Fatal(err)
	}
	victim := 2
	var req *PlanRequest
	for size := int64(4); size <= 64; size++ {
		r := &PlanRequest{Kernel: "l1", Size: size}
		if cluster.Owner(serve.CanonicalPlanKey(r), []int{0, 1, 2}) == victim {
			req = r
			break
		}
	}
	if req == nil {
		t.Fatal("no l1 size in [4,64] owned by shard 2")
	}

	// Kill the owner. The stale map still routes there first; the call
	// must fail over to a survivor and succeed, then refresh the map.
	f.kill(victim)
	pr, err := m.Plan(ctx, req)
	if err != nil {
		t.Fatalf("plan after owner death: %v", err)
	}
	if pr.Cluster.Shard == victim {
		t.Fatalf("served by dead shard %d", victim)
	}
	st := m.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failover counted despite dead preferred endpoint")
	}
	if st.MapRefreshes < 2 {
		t.Fatalf("map refreshes = %d, want ≥ 2 (initial + post-failover)", st.MapRefreshes)
	}

	// The refreshed map marks the dead shard down: the same key now
	// routes straight to its Gray-ring standby — the shard holding its
	// replicas — with no further failovers.
	rehomed := cluster.ServingOwner(serve.CanonicalPlanKey(req), []int{0, 1, 2},
		func(id int) bool { return id != victim })
	before := m.Stats().Failovers
	pr2, err := m.Plan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.Cluster.Shard != rehomed {
		t.Fatalf("rehomed key served by shard %d, want %d", pr2.Cluster.Shard, rehomed)
	}
	if got := m.Stats().Failovers; got != before {
		t.Fatalf("failovers went %d → %d on a rehomed key, want no change", before, got)
	}
	// The dead endpoint's breaker tripped on the transport failure.
	if bs := m.Stats().PerEndpoint[f.urls[victim]]; bs.BreakerOpens == 0 {
		t.Fatal("dead endpoint's breaker never opened")
	}
}

// A caller-supplied *http.Client must carry every exchange on every
// endpoint (the connection-pool tuning satellite).
func TestMultiCustomHTTPClient(t *testing.T) {
	f := newFakeShards(t, 2)
	var rt countingTransport
	m := newTestMulti(t, f, func(cfg *MultiConfig) {
		cfg.Config.HTTPClient = &http.Client{Transport: &rt}
	})
	ctx := context.Background()
	for size := int64(4); size <= 8; size++ {
		if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: size}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ReadyAll(ctx); err != nil {
		t.Fatal(err)
	}
	calls := rt.calls.Load()
	// 5 plans + 1 map refresh + 2 readyz probes, all through our transport.
	if calls < 8 {
		t.Fatalf("custom transport saw %d calls, want ≥ 8", calls)
	}
}

type countingTransport struct {
	calls atomic.Int64
}

func (ct *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ct.calls.Add(1)
	return http.DefaultTransport.RoundTrip(r)
}

// A 4xx is the server telling us the request is wrong; retrying it on a
// sibling shard would just repeat the rejection.
func TestMultiTerminal4xxNoFailover(t *testing.T) {
	f := newFakeShards(t, 2)
	m := newTestMulti(t, f, nil)
	_, err := m.Plan(context.Background(), &PlanRequest{Kernel: "bogus", Size: 4})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := m.Stats().Failovers; got != 0 {
		t.Fatalf("failovers = %d, want 0 on a terminal 4xx", got)
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMulti(MultiConfig{}); err == nil {
		t.Fatal("NewMulti with no endpoints succeeded")
	}
	if _, err := NewMulti(MultiConfig{Endpoints: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("NewMulti with duplicate endpoints succeeded")
	}
}

// Against a single non-clustered daemon the Multi degrades gracefully:
// the 404 from /v1/cluster latches and is never asked again.
func TestMultiSingleDaemonNoClusterMode(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(PlanResponse{Kernel: "l1", Size: 4, Cache: CacheMiss})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	m, err := NewMulti(MultiConfig{Endpoints: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for k := 0; k < 3; k++ {
		if _, err := m.Plan(ctx, &PlanRequest{Kernel: "l1", Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.noCluster.Load() {
		t.Fatal("single-daemon 404 did not latch noCluster")
	}
	if got := m.Stats().MapRefreshes; got != 0 {
		t.Fatalf("map refreshes = %d, want 0 against a non-clustered daemon", got)
	}
}
