// The per-segment bloom filter: a read that misses RAM must not pay a
// block read per segment just to learn the key is absent. Each segment
// carries a filter sized at build time for its exact key count, so a
// lookup consults ~1 filter per segment (a few cache lines) and touches
// disk only for the segments that may hold the key.
package tiered

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
)

// bloomBitsPerKey sizes filters at ~10 bits/key: with the double-hashing
// probe count below, the theoretical false-positive rate is < 1%.
const bloomBitsPerKey = 10

// bloomProbes is the number of derived hash probes (k). 7 is the optimum
// k = m/n · ln 2 for 10 bits/key, rounded to the nearest integer.
const bloomProbes = 7

// bloom is a classic split-free bloom filter using Kirsch–Mitzenmacher
// double hashing: two 32-bit halves of one 64-bit FNV-1a hash generate
// all k probe positions, so a membership test costs one string hash.
type bloom struct {
	bits []byte
	m    uint32 // bit count
}

// newBloom sizes a filter for n keys. A zero-key filter still allocates
// one word so MayContain stays branch-free.
func newBloom(n int) *bloom {
	m := n * bloomBitsPerKey
	if m < 64 {
		m = 64
	}
	return &bloom{bits: make([]byte, (m+7)/8), m: uint32(m)}
}

// hash2 derives the two base hashes for a key.
func hash2(key string) (uint32, uint32) {
	h := fnv.New64a()
	// io.WriteString on a hash never fails.
	_, _ = h.Write([]byte(key))
	sum := h.Sum64()
	h1 := uint32(sum)
	h2 := uint32(sum >> 32)
	if h2 == 0 {
		// A zero step would probe one position k times; any odd constant
		// restores independent probes.
		h2 = 0x9e3779b9
	}
	return h1, h2
}

// add inserts a key.
func (b *bloom) add(key string) {
	h1, h2 := hash2(key)
	for i := uint32(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % b.m
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether the key might be present. False means
// definitely absent.
func (b *bloom) mayContain(key string) bool {
	h1, h2 := hash2(key)
	for i := uint32(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % b.m
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal renders the filter as [uint32 m][bits].
func (b *bloom) marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint32(out[0:4], b.m)
	copy(out[4:], b.bits)
	return out
}

// unmarshalBloom parses a marshal output.
func unmarshalBloom(data []byte) (*bloom, error) {
	if len(data) < 4 {
		return nil, errors.New("tiered: bloom too short")
	}
	m := binary.LittleEndian.Uint32(data[0:4])
	if m == 0 || int((m+7)/8) != len(data)-4 {
		return nil, errors.New("tiered: bloom size mismatch")
	}
	return &bloom{bits: data[4:], m: m}, nil
}
