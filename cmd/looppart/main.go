// Command looppart partitions a built-in nested-loop kernel with
// Algorithm 1 of the paper and prints the schedule, the projected
// structure, the groups/blocks, and the TIG, verifying the Lemma/Theorem
// invariants along the way.
//
// Usage:
//
//	looppart -kernel matmul -size 4
//	looppart -kernel stencil -size 8 -pi 2,1 -groups
//	looppart -kernel l1 -size 3 -search
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	loopmap "repro"
	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/loop"
	"repro/internal/report"
	"repro/internal/svg"
	"repro/internal/vec"
)

func main() {
	var (
		kernel   = flag.String("kernel", "matmul", "kernel name ("+strings.Join(loopmap.KernelNames(), ", ")+")")
		size     = flag.Int64("size", 4, "kernel size parameter")
		file     = flag.String("file", "", "parse the loop from a DSL file instead of using -kernel")
		piFlag   = flag.String("pi", "", "time function Π as comma-separated integers (default: kernel's)")
		search   = flag.Bool("search", false, "search for the optimal Π instead of using the default")
		groups   = flag.Bool("groups", false, "print every group and its block")
		gridFlag = flag.Bool("grid", false, "print the block of every iteration as a 2-D grid (2-D kernels only)")
		emit     = flag.String("emit", "", "with -file: write a standalone parallel Go program to this path")
		svgOut   = flag.String("svg", "", "write the 2-D structure (colored by block) as SVG to this path")
		svgTIG   = flag.String("svgtig", "", "write the TIG graph as SVG to this path")
		emitDim  = flag.Int("emitdim", 2, "hypercube dimension for -emit")
	)
	flag.Parse()

	if *emit != "" {
		if *file == "" {
			fail(fmt.Errorf("-emit requires -file"))
		}
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		code, err := loopmap.GenerateSPMD(*file, string(src), *emitDim, 1)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*emit, []byte(code), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: SPMD program for %d processors (run with `go run %s`)\n",
			*emit, 1<<uint(*emitDim), *emit)
		return
	}

	opt := loopmap.PlanOptions{CubeDim: -1, SearchPi: *search}
	if *piFlag != "" {
		pi, err := parseVec(*piFlag)
		if err != nil {
			fail(err)
		}
		opt.Pi = pi
	}
	var k *loopmap.Kernel
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		k, err = loopmap.ParseKernel(*file, string(src), 1)
		if err != nil {
			fail(err)
		}
		fmt.Printf("parsed %s: dependences %v, optimal Π = %v\n", *file, k.Deps, k.Pi)
	} else {
		k = loopmap.NewKernel(*kernel, *size)
	}
	plan, err := loopmap.NewPlan(k, opt)
	if err != nil {
		fail(err)
	}
	fmt.Print(plan.Summary())

	// Dependence classification (the single-assignment rewriting absorbs
	// anti/output dependences; show what the front end sees).
	if cls := k.Nest.ClassifyDependences(); len(cls) > 0 {
		counts := map[loop.DepClass]int{}
		for _, c := range cls {
			counts[c.Class]++
		}
		fmt.Printf("dependences by class: %d flow, %d anti, %d output\n",
			counts[loop.Flow], counts[loop.Anti], counts[loop.Output])
	}

	// Lamport's coordinate method for contrast (§I of the paper).
	coord := hyperplane.CoordinateMethod(plan.Structure)
	if coord.Applicable() {
		fmt.Printf("coordinate method: DOALL dims %v, %d sequential steps (hyperplane: %d)\n",
			coord.ParallelDims, coord.Steps, plan.Schedule.Steps())
	} else {
		fmt.Printf("coordinate method: not applicable (would serialize to %d steps; hyperplane needs %d)\n",
			coord.Steps, plan.Schedule.Steps())
	}

	if *groups {
		fmt.Println("\ngroups:")
		tb := report.NewTable("group", "base (scaled)", "projected points", "block size", "sends to")
		for _, g := range plan.Partitioning.Groups {
			tb.AddRow(fmt.Sprintf("G%d", g.ID), g.Base, len(g.Members),
				plan.Partitioning.BlockSize(g.ID), fmt.Sprint(plan.TIG.Successors(g.ID)))
		}
		tb.Render(os.Stdout)
	}

	if *gridFlag {
		if plan.Structure.Dim() != 2 {
			fail(fmt.Errorf("-grid requires a 2-D kernel, %s is %d-D", *kernel, plan.Structure.Dim()))
		}
		fmt.Println("\nblock of each iteration (first index down, second right):")
		fmt.Print(report.Grid2D(plan.Structure.V, func(p vec.Int) string {
			return strconv.Itoa(plan.Partitioning.BlockOfPoint(p))
		}))
	}

	if *svgOut != "" {
		if plan.Structure.Dim() != 2 {
			fail(fmt.Errorf("-svg requires a 2-D kernel"))
		}
		doc, err := svg.Structure2D(plan.Structure,
			func(x vec.Int) int { return plan.Partitioning.BlockOfPoint(x) },
			plan.Partitioning.NumBlocks(),
			func(x vec.Int) int64 { return plan.Schedule.Step(x) })
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*svgOut, []byte(doc), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s\n", *svgOut)
	}
	if *svgTIG != "" {
		doc, err := svg.TIG(plan.TIG)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*svgTIG, []byte(doc), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *svgTIG)
	}

	if err := core.CheckInvariants(plan.Partitioning); err != nil {
		fail(fmt.Errorf("invariant check failed: %w", err))
	}
	if err := core.CheckTheorem2(plan.Partitioning, plan.TIG); err != nil {
		fail(fmt.Errorf("Theorem 2 check failed: %w", err))
	}
	fmt.Println("\ninvariants: Lemma 1 / Theorem 1 / Theorem 2 verified")
}

func parseVec(s string) (vec.Int, error) {
	parts := strings.Split(s, ",")
	out := make(vec.Int, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("looppart: bad Π component %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "looppart:", err)
	os.Exit(1)
}
