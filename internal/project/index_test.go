package project

import (
	"math/rand"
	"testing"

	"repro/internal/loop"
	"repro/internal/vec"
)

// buildRandom projects a random rectangular or triangular nest under a
// random valid Π (all-positive coefficients are valid for the unit dep).
func buildRandom(rng *rand.Rand, rect bool) (*Structure, error) {
	dims := 2 + rng.Intn(2)
	var n *loop.Nest
	if rect {
		lo := make([]int64, dims)
		hi := make([]int64, dims)
		for j := range lo {
			lo[j] = int64(rng.Intn(5)) - 2
			hi[j] = lo[j] + int64(rng.Intn(6))
		}
		n = loop.NewRect("randrect", lo, hi)
	} else {
		n = &loop.Nest{Name: "randtri", Dims: dims}
		n.Lower = append(n.Lower, loop.Const(0))
		n.Upper = append(n.Upper, loop.Const(int64(2+rng.Intn(4))))
		for j := 1; j < dims; j++ {
			coeffs := make([]int64, dims)
			coeffs[j-1] = 1
			n.Lower = append(n.Lower, loop.Const(0))
			n.Upper = append(n.Upper, loop.Affine{Const: int64(2 + rng.Intn(3)), Coeffs: coeffs})
		}
	}
	d := make(vec.Int, dims)
	d[0] = 1
	st, err := loop.NewStructure(n, d)
	if err != nil {
		return nil, err
	}
	pi := make(vec.Int, dims)
	pi[0] = 1 + int64(rng.Intn(2))
	for j := 1; j < dims; j++ {
		pi[j] = int64(rng.Intn(3)) // zero coefficients exercise drop-dim selection
	}
	return Project(st, pi)
}

// TestLatticeIndexAgreesWithMap probes the dense lattice index against a
// string-keyed reference map on random structures: every point must resolve
// to its position, and random lattice probes (on and off the point set)
// must agree on membership.
func TestLatticeIndexAgreesWithMap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		ps, err := buildRandom(rng, trial%2 == 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref := make(map[string]int, len(ps.Points))
		for i, p := range ps.Points {
			ref[p.Key()] = i
		}
		for i, p := range ps.Points {
			if got := ps.IndexOf(p); got != i {
				t.Fatalf("trial %d: IndexOf(%v) = %d, want %d (dense=%v)", trial, p, got, i, ps.Dense())
			}
		}
		for probe := 0; probe < 200; probe++ {
			// Probe positions on the scaled hyperplane lattice: a point plus
			// random multiples of scaled projected dependence vectors, the
			// positions Algorithm 1's region growing actually queries.
			q := ps.Points[rng.Intn(len(ps.Points))].Clone()
			for _, d := range ps.Deps {
				q = q.AddScaled(int64(rng.Intn(7))-3, d.Scaled)
			}
			want, ok := ref[q.Key()]
			if !ok {
				want = -1
			}
			if got := ps.IndexOf(q); got != want {
				t.Fatalf("trial %d: IndexOf(%v) = %d, want %d (dense=%v)", trial, q, got, want, ps.Dense())
			}
		}
	}
}

// TestLatticeFallbackMatchesDense forces the map fallback (by shrinking the
// dense cap) and checks that the two lookup paths agree everywhere.
func TestLatticeFallbackMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	defer func(old int64) { latticeDenseCap = old }(latticeDenseCap)
	for trial := 0; trial < 50; trial++ {
		latticeDenseCap = 1 << 22
		dense, err := buildRandom(rand.New(rand.NewSource(int64(trial))), trial%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		latticeDenseCap = 0
		sparse, err := buildRandom(rand.New(rand.NewSource(int64(trial))), trial%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if !dense.Dense() || sparse.Dense() {
			t.Fatalf("trial %d: cap override ineffective (dense=%v sparse=%v)", trial, dense.Dense(), sparse.Dense())
		}
		for probe := 0; probe < 300; probe++ {
			q := dense.Points[rng.Intn(len(dense.Points))].Clone()
			for _, d := range dense.Deps {
				q = q.AddScaled(int64(rng.Intn(9))-4, d.Scaled)
			}
			if got, want := dense.IndexOf(q), sparse.IndexOf(q); got != want {
				t.Fatalf("trial %d: dense IndexOf(%v) = %d, map fallback = %d", trial, q, got, want)
			}
		}
	}
}
