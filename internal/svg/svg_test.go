package svg

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hyperplane"
	"repro/internal/kernels"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/project"
	"repro/internal/sim"
	"repro/internal/vec"
)

// countElems parses the SVG as XML and counts element names.
func countElems(t *testing.T, doc string) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, doc[:min(len(doc), 600)])
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func l1Pipeline(t *testing.T) (*loop.Structure, hyperplane.Schedule, *core.Partitioning) {
	t.Helper()
	k := kernels.L1(3)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := hyperplane.NewSchedule(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := project.Project(st, k.Pi)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Partition(ps, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return st, sch, p
}

func TestStructure2DFig3(t *testing.T) {
	st, sch, p := l1Pipeline(t)
	doc, err := Structure2D(st,
		func(x vec.Int) int { return p.BlockOfPoint(x) }, p.NumBlocks(),
		func(x vec.Int) int64 { return sch.Step(x) })
	if err != nil {
		t.Fatal(err)
	}
	c := countElems(t, doc)
	if c["circle"] != 16 {
		t.Fatalf("circles = %d, want 16", c["circle"])
	}
	// 33 dependence arrows + one marker path.
	if c["line"] != 33 {
		t.Fatalf("lines = %d, want 33", c["line"])
	}
	if c["text"] != 16 {
		t.Fatalf("texts = %d, want 16", c["text"])
	}
	// Four block colors present.
	colors := map[string]bool{}
	for _, l := range strings.Split(doc, "\n") {
		if i := strings.Index(l, "hsl("); i >= 0 {
			colors[l[i:i+12]] = true
		}
	}
	if len(colors) < 4 {
		t.Fatalf("distinct colors = %d, want >= 4", len(colors))
	}
}

func TestStructure2DErrors(t *testing.T) {
	k := kernels.MatMul(3)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Structure2D(st, nil, 0, nil); err == nil {
		t.Fatal("3-D structure accepted")
	}
}

func TestTIGFig7(t *testing.T) {
	_, _, p := l1Pipeline(t)
	tig := core.BuildTIG(p)
	doc, err := TIG(tig)
	if err != nil {
		t.Fatal(err)
	}
	c := countElems(t, doc)
	if c["circle"] != 4 {
		t.Fatalf("circles = %d, want 4 blocks", c["circle"])
	}
	// One line per TIG edge + the marker path.
	if c["line"] != len(tig.Edges) {
		t.Fatalf("lines = %d, want %d", c["line"], len(tig.Edges))
	}
}

func TestGanttSVG(t *testing.T) {
	st, sch, p := l1Pipeline(t)
	a := sim.BlocksAsProcs(p)
	stats, err := sim.Simulate(st, sch, a, machine.Unit(), sim.Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Gantt(stats)
	if err != nil {
		t.Fatal(err)
	}
	c := countElems(t, doc)
	// Lane backgrounds (4) + one rect per span.
	if c["rect"] != 4+len(stats.Spans) {
		t.Fatalf("rects = %d, want %d", c["rect"], 4+len(stats.Spans))
	}
	// No timeline recorded → error.
	noSpans, err := sim.Simulate(st, sch, a, machine.Unit(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gantt(noSpans); err == nil {
		t.Fatal("Gantt without spans accepted")
	}
	if _, err := Gantt(nil); err == nil {
		t.Fatal("nil stats accepted")
	}
}

func TestPaletteDistinctness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		c := palette(i, 8)
		if seen[c] {
			t.Fatalf("palette repeats color %s", c)
		}
		seen[c] = true
	}
	if palette(0, 0) == "" {
		t.Fatal("palette with n=0 must still return a color")
	}
}
