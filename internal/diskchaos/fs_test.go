package diskchaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/persist"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Op: "chmod", Kind: KindEIO}}},
		{Rules: []Rule{{Op: OpWrite, Kind: "gamma-ray"}}},
		{Rules: []Rule{{Op: OpSync, Kind: KindENOSPC}}},  // enospc is write-only
		{Rules: []Rule{{Op: OpRead, Kind: KindShort}}},   // short is write-only
		{Rules: []Rule{{Op: OpWrite, Kind: KindBitrot}}}, // bitrot is read-only
		{Rules: []Rule{{Op: OpWrite, Kind: KindEIO, After: -1}}},
		{Rules: []Rule{{Op: OpWrite, Kind: KindEIO, Count: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("plan %d: Validate() = %v, want ErrInvalid", i, err)
		}
	}
	good := Plan{Seed: 7, Rules: []Rule{
		{Op: OpSync, Path: "wal", Kind: KindEIO, After: 3, Count: -1},
		{Op: OpRead, Kind: KindBitrot},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestGeneratePlanDeterministicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := GeneratePlan(seed), GeneratePlan(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans differ: %s vs %s", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		if len(a.Rules) != 1 || a.Rules[0].Path != "wal.log" {
			t.Fatalf("seed %d: unexpected shape %s", seed, a)
		}
	}
}

// The After/Count window: calls before After pass, the next Count calls
// fail, later calls pass again.
func TestRuleWindow(t *testing.T) {
	dir := t.TempDir()
	ffs, err := New(Plan{Rules: []Rule{
		{Op: OpSync, Path: "f.dat", Kind: KindEIO, After: 2, Count: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.OpenFile(filepath.Join(dir, "f.dat"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, f.Sync() != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sync outcomes %v, want %v", got, want)
		}
	}
	if ffs.Injected()[KindEIO] != 2 || ffs.TotalInjected() != 2 {
		t.Fatalf("injected counters %v", ffs.Injected())
	}
}

// Injected errors carry both the ErrInjected tag and the right errno.
func TestErrnoTagging(t *testing.T) {
	dir := t.TempDir()
	ffs, err := New(Plan{Rules: []Rule{
		{Op: OpWrite, Kind: KindENOSPC, Count: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.OpenFile(filepath.Join(dir, "f.dat"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, werr := f.Write([]byte("x"))
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("write error %v not tagged ErrInjected", werr)
	}
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("write error %v does not carry ENOSPC", werr)
	}
}

// A short write must leave exactly half the buffer on disk — a real torn
// frame, not a clean failure.
func TestShortWriteTearsForReal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.dat")
	ffs, err := New(Plan{Rules: []Rule{
		{Op: OpWrite, Path: "f.dat", Kind: KindShort},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("0123456789")
	n, werr := f.Write(buf)
	if werr == nil || !errors.Is(werr, ErrInjected) {
		t.Fatalf("short write error = %v", werr)
	}
	if n != len(buf)/2 {
		t.Fatalf("short write reported %d bytes, want %d", n, len(buf)/2)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("on-disk bytes %q, want the first half", data)
	}
}

// Bitrot is deterministic per seed, flips exactly one bit in the read
// copy, and never touches the file.
func TestBitrotDeterministicAndNonMutating(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.dat")
	orig := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	read := func(seed uint64) []byte {
		ffs, err := New(Plan{Seed: seed, Rules: []Rule{{Op: OpRead, Kind: KindBitrot}}})
		if err != nil {
			t.Fatal(err)
		}
		data, err := ffs.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := read(42), read(42)
	if string(a) != string(b) {
		t.Fatal("same seed produced different bitrot")
	}
	diffBits := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^orig[i])&(1<<bit) != 0 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("bitrot flipped %d bits, want exactly 1", diffBits)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(orig) {
		t.Fatal("bitrot mutated the file on disk")
	}
}

// Arm swaps the rule set mid-run and resets matching counters while
// preserving the injected totals.
func TestArmMidRun(t *testing.T) {
	dir := t.TempDir()
	ffs, err := New(Plan{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.OpenFile(filepath.Join(dir, "f.dat"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("fault-free sync failed: %v", err)
	}
	if err := ffs.Arm([]Rule{{Op: OpSync, Kind: KindEIO, Count: -1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync fault did not fire: %v", err)
	}
	if err := ffs.Arm(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("disarmed sync still failing: %v", err)
	}
	if ffs.TotalInjected() != 1 {
		t.Fatalf("injected total %d survived re-arms, want 1", ffs.TotalInjected())
	}
}

// The FS seam composes: a store opened over a pass-through FS behaves
// exactly like one on the real filesystem.
func TestPassThroughSatisfiesPersistFS(t *testing.T) {
	var _ persist.FS = (*FS)(nil)
	ffs, err := New(Plan{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, _, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(persist.Record{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if ffs.TotalInjected() != 0 {
		t.Fatalf("empty plan injected %d faults", ffs.TotalInjected())
	}
}
