// Background scrubbing and repair: the daemon periodically re-verifies
// its durable files' checksums (persist.Store.Scrub) so bitrot that lands
// after startup is found while the data is still repairable. A dirty pass
// triggers two repairs at once: the snapshot+WAL are rewritten from the
// live cache (the cache is authoritative — every entry was either
// computed here or CRC-verified on ingest), and in cluster mode an
// anti-entropy round is kicked so any record the cache no longer holds is
// re-fetched from the shard's standby replica.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/persist"
)

// scrubber runs periodic scrub passes until stopped.
type scrubber struct {
	s        *Server
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startScrubber launches the background scrub loop (no-op without a
// store or disk tier, or when ScrubInterval is negative).
func (s *Server) startScrubber() {
	if (s.store == nil && s.tier == nil) || s.cfg.ScrubInterval < 0 {
		return
	}
	sc := &scrubber{
		s:        s,
		interval: s.cfg.ScrubInterval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.scrub = sc
	go sc.loop()
}

func (s *Server) stopScrubber() {
	if s.scrub == nil {
		return
	}
	s.scrub.stopOnce.Do(func() { close(s.scrub.stop) })
	<-s.scrub.done
}

func (sc *scrubber) loop() {
	defer close(sc.done)
	t := time.NewTicker(sc.interval)
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-t.C:
			sc.s.runScrub()
		}
	}
}

// ScrubNow runs one synchronous scrub pass and returns its report; ok is
// false when the daemon has no durable store. Harnesses and operators use
// it to verify storage on demand instead of waiting for the interval.
func (s *Server) ScrubNow() (persist.ScrubReport, bool) {
	if s.store == nil && s.tier == nil {
		return persist.ScrubReport{}, false
	}
	return s.runScrub(), true
}

func (s *Server) runScrub() persist.ScrubReport {
	rate := s.cfg.ScrubRate
	if rate < 0 {
		rate = 0 // unthrottled
	}
	var rep persist.ScrubReport
	if s.tier != nil {
		rep = s.scrubTier(rate)
	} else {
		rep = s.store.Scrub(rate)
		s.metrics.scrubRecords.Add(int64(rep.SnapshotRecords + rep.WALRecords))
	}
	s.metrics.scrubRuns.Add(1)
	if rep.Clean() {
		return rep
	}
	s.metrics.scrubCorrupt.Add(int64(rep.CorruptRegions))
	s.cfg.Logger.Error("scrub found corruption",
		"regions", rep.CorruptRegions, "bytes", rep.CorruptBytes, "first", rep.FirstErr)
	if cn := s.cnode(); cn != nil && cn.ae != nil {
		// Ask the replica layer to reconcile out of band: any record the
		// local cache lost comes back from the Gray-neighbor standby.
		cn.ae.requestKick()
	}
	if s.tier == nil {
		// The flat store repairs by rewriting itself from the live cache;
		// a sick tier segment was already quarantined by Scrub, its keys
		// left to recompute on touch or to anti-entropy healing.
		s.repairStore()
	}
	return rep
}

// scrubTier runs one pass over the tier's segments, re-verifying every
// block checksum under the configured bandwidth throttle, and maps the
// outcome onto the flat store's report shape: SnapshotRecords counts the
// segments scanned and CorruptRegions the segments quarantined.
func (s *Server) scrubTier(rate int64) persist.ScrubReport {
	start := time.Now()
	var scannedBytes int64
	throttle := func(n int) {
		scannedBytes += int64(n)
		if rate <= 0 {
			return
		}
		// Sleep whenever the pass is running ahead of the byte budget.
		ahead := time.Duration(float64(scannedBytes)/float64(rate)*float64(time.Second)) - time.Since(start)
		if ahead > 0 {
			time.Sleep(ahead)
		}
	}
	scanned, quarantined, _ := s.tier.Scrub(throttle)
	rep := persist.ScrubReport{
		SnapshotRecords: scanned,
		CorruptRegions:  quarantined,
		BytesScanned:    scannedBytes,
		Elapsed:         time.Since(start),
	}
	if quarantined > 0 {
		rep.FirstErr = fmt.Errorf("tiered: %d of %d segments failed verification and were quarantined", quarantined, scanned)
	}
	return rep
}

// repairStore rewrites the snapshot and WAL from the live cache via the
// normal compaction path (shared CAS keeps it single-flight with
// WAL-growth compactions). Skipped while degraded: a store that cannot
// take writes cannot be repaired in place.
func (s *Server) repairStore() {
	if s.storeDegraded.Load() {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		if err := s.store.Compact(s.cache.records()); err != nil {
			s.metrics.walErrors.Add(1)
			s.cfg.Logger.Error("scrub repair compaction failed", "err", err)
			return
		}
		s.metrics.compactions.Add(1)
		s.metrics.scrubRepairs.Add(1)
		s.cfg.Logger.Info("scrub repair: store rewritten from live cache")
	}()
}
