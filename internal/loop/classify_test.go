package loop

import (
	"testing"

	"repro/internal/vec"
)

func TestClassifyL1AllFlow(t *testing.T) {
	// Loop L1 in the paper's form has only flow dependences — its anti
	// counterparts are lexicographically negative and so not dependences.
	n := NewRect("L1", []int64{0, 0}, []int64{3, 3})
	n.Stmts = []Stmt{
		{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(1, 1)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(1, 0)}, {Var: "B", Offset: vec.NewInt(0, 0)}},
		},
		{
			Label:  "S2",
			Writes: []Access{{Var: "B", Offset: vec.NewInt(1, 0)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(0, 0)}},
		},
	}
	deps := n.ClassifyDependences()
	for _, d := range deps {
		if d.Class != Flow {
			t.Errorf("unexpected %s dependence %v on %s", d.Class, d.Vector, d.Var)
		}
	}
	if len(deps) != 3 {
		t.Fatalf("deps = %v", deps)
	}
}

func TestClassifyAnti(t *testing.T) {
	// A[i] = ...; ... = A[i+1] later in iteration order: reading A[i+1]
	// at iteration i, which iteration i+1 overwrites — an anti dependence
	// with distance (1).
	n := NewRect("anti", []int64{0}, []int64{5})
	n.Stmts = []Stmt{
		{
			Label:  "S1",
			Writes: []Access{{Var: "A", Offset: vec.NewInt(0)}},
			Reads:  []Access{{Var: "A", Offset: vec.NewInt(1)}, {Var: "A", Offset: vec.NewInt(-1)}},
		},
	}
	deps := n.ClassifyDependences()
	var flows, antis int
	for _, d := range deps {
		switch d.Class {
		case Flow:
			flows++
			if !d.Vector.Equal(vec.NewInt(1)) {
				t.Errorf("flow vector = %v", d.Vector)
			}
		case Anti:
			antis++
			if !d.Vector.Equal(vec.NewInt(1)) {
				t.Errorf("anti vector = %v", d.Vector)
			}
		}
	}
	// Read A[i-1]: flow from write A[i] with d = (0)-(-1) = (1).
	// Read A[i+1]: anti toward write A[i] with d = (1)-(0) = (1).
	if flows != 1 || antis != 1 {
		t.Fatalf("flows=%d antis=%d (%v)", flows, antis, deps)
	}
}

func TestClassifyOutput(t *testing.T) {
	// Two statements writing the same variable at different offsets.
	n := NewRect("out", []int64{0}, []int64{5})
	n.Stmts = []Stmt{
		{Label: "S1", Writes: []Access{{Var: "A", Offset: vec.NewInt(0)}}},
		{Label: "S2", Writes: []Access{{Var: "A", Offset: vec.NewInt(2)}}},
	}
	deps := n.ClassifyDependences()
	if len(deps) != 1 {
		t.Fatalf("deps = %v", deps)
	}
	if deps[0].Class != Output || !deps[0].Vector.Equal(vec.NewInt(2)) {
		t.Fatalf("dep = %+v", deps[0])
	}
	// S2's write at i reaches the element S1 writes at i+2: S1's instance
	// at i+2 is the later writer.
	if deps[0].FromStmt != "S2" || deps[0].ToStmt != "S1" {
		t.Fatalf("direction = %s -> %s", deps[0].FromStmt, deps[0].ToStmt)
	}
}

func TestClassifyStringNames(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Fatal("class names wrong")
	}
}
