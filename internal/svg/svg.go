// Package svg renders the paper's figures as standalone SVG documents:
// 2-D computational structures with dependence arrows and block coloring
// (Figs. 1, 3, 9), TIG graphs (Fig. 7), and simulated execution timelines.
// Everything is emitted with fmt onto plain strings — no dependencies —
// and the output is well-formed XML (checked by the tests).
package svg

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/vec"
)

// palette returns a visually distinct fill color for class i of n.
func palette(i, n int) string {
	if n < 1 {
		n = 1
	}
	hue := (360 * i / n) % 360
	return fmt.Sprintf("hsl(%d, 65%%, 72%%)", hue)
}

const (
	cell   = 56.0 // grid pitch in user units
	radius = 14.0
	margin = 48.0
)

// Structure2D renders a 2-D computational structure: one circle per index
// point (colored by its block), one arrow per dependence arc, and the
// point's execution step as its label. blockOf may be nil (single color).
func Structure2D(st *loop.Structure, blockOf func(p vec.Int) int, numBlocks int, stepOf func(p vec.Int) int64) (string, error) {
	if st.Dim() != 2 {
		return "", fmt.Errorf("svg: Structure2D needs a 2-D structure, got %d-D", st.Dim())
	}
	if len(st.V) == 0 {
		return "", fmt.Errorf("svg: empty structure")
	}
	minI, maxI := st.V[0][0], st.V[0][0]
	minJ, maxJ := st.V[0][1], st.V[0][1]
	for _, p := range st.V {
		if p[0] < minI {
			minI = p[0]
		}
		if p[0] > maxI {
			maxI = p[0]
		}
		if p[1] < minJ {
			minJ = p[1]
		}
		if p[1] > maxJ {
			maxJ = p[1]
		}
	}
	// j increases rightward (x), i downward (y) — the paper's layout.
	px := func(p vec.Int) (float64, float64) {
		return margin + float64(p[1]-minJ)*cell, margin + float64(p[0]-minI)*cell
	}
	width := margin*2 + float64(maxJ-minJ)*cell
	height := margin*2 + float64(maxI-minI)*cell

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<defs><marker id="arr" markerWidth="8" markerHeight="8" refX="7" refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z" fill="#555"/></marker></defs>` + "\n")

	// Dependence arrows first (under the nodes), shortened to the circle rim.
	st.ForEachEdge(func(e loop.Edge) {
		x1, y1 := px(e.From)
		x2, y2 := px(e.To)
		dx, dy := x2-x1, y2-y1
		l := dx*dx + dy*dy
		if l == 0 {
			return
		}
		// Normalize and trim by the radius on both ends.
		inv := 1.0 / math.Sqrt(l)
		ux, uy := dx*inv, dy*inv
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#555" stroke-width="1" marker-end="url(#arr)"/>`+"\n",
			x1+ux*radius, y1+uy*radius, x2-ux*(radius+3), y2-uy*(radius+3))
	})

	for _, p := range st.V {
		x, y := px(p)
		fill := palette(0, 1)
		if blockOf != nil {
			fill = palette(blockOf(p), numBlocks)
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333"/>`+"\n", x, y, radius, fill)
		if stepOf != nil {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" dominant-baseline="central">%d</text>`+"\n",
				x, y, stepOf(p))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// TIG renders a task interaction graph with nodes on a circle, node area
// scaled by block load and edge width by traffic.
func TIG(t *core.TIG) (string, error) {
	if t.N == 0 {
		return "", fmt.Errorf("svg: empty TIG")
	}
	const r = 220.0
	size := 2 * (r + 70)
	cx, cy := size/2, size/2
	pos := make([][2]float64, t.N)
	for i := 0; i < t.N; i++ {
		ang := 2 * math.Pi * float64(i) / float64(t.N)
		pos[i] = [2]float64{cx + r*math.Cos(ang), cy + r*math.Sin(ang)}
	}
	var maxW int64 = 1
	for _, e := range t.Edges {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	var maxLoad int64 = 1
	for _, l := range t.Loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		size, size, size, size)
	b.WriteString(`<defs><marker id="tarr" markerWidth="8" markerHeight="8" refX="7" refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z" fill="#777"/></marker></defs>` + "\n")
	for _, e := range t.Edges {
		w := 1 + 3*float64(e.Weight)/float64(maxW)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#777" stroke-width="%.1f" marker-end="url(#tarr)"/>`+"\n",
			pos[e.From][0], pos[e.From][1], pos[e.To][0], pos[e.To][1], w)
	}
	for i := 0; i < t.N; i++ {
		nr := 10 + 14*float64(t.Loads[i])/float64(maxLoad)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333"/>`+"\n",
			pos[i][0], pos[i][1], nr, palette(i, t.N))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" dominant-baseline="central">G%d</text>`+"\n",
			pos[i][0], pos[i][1], i)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Gantt renders a simulated timeline: one lane per processor, compute
// spans in blue, sends in orange.
func Gantt(stats *sim.Stats) (string, error) {
	if stats == nil || len(stats.Busy) == 0 {
		return "", fmt.Errorf("svg: no processors")
	}
	if len(stats.Spans) == 0 {
		return "", fmt.Errorf("svg: no spans recorded (set sim.Options.Timeline)")
	}
	const laneH, gap = 26.0, 8.0
	const plotW = 900.0
	n := len(stats.Busy)
	height := margin*2 + float64(n)*(laneH+gap)
	width := plotW + margin*2
	scale := plotW / stats.Makespan
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	for p := 0; p < n; p++ {
		y := margin + float64(p)*(laneH+gap)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="end" dominant-baseline="central">P%d</text>`+"\n",
			margin-8, y+laneH/2, p)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#f0f0f0"/>`+"\n",
			margin, y, plotW, laneH)
	}
	for _, s := range stats.Spans {
		y := margin + float64(s.Proc)*(laneH+gap)
		color := "#5b8dd9"
		if s.Kind == sim.SpanSend {
			color = "#e8923a"
		}
		w := (s.End - s.Start) * scale
		if w < 0.5 {
			w = 0.5
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="%s"/>`+"\n",
			margin+s.Start*scale, y, w, laneH, color)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">makespan %.4g</text>`+"\n", margin, height-12, stats.Makespan)
	b.WriteString("</svg>\n")
	return b.String(), nil
}
