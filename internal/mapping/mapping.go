// Package mapping implements Algorithm 2 of the paper (§IV): mapping the
// partitioned blocks of a nested loop onto a hypercube.
//
// Phase I (cluster formation) recursively bisects the set of blocks n
// times, cycling round-robin over the grouping/auxiliary axes (the paper's
// `i = j mod β`), so that neighbouring blocks stay in the same cluster.
// Phase II (cluster allocation) numbers the 2^{p_i} slices of each axis
// with a p_i-bit Gray code and concatenates the per-axis fields into an
// n-bit node address; each cluster is placed on the processor with the
// identical binary address, which puts axis-neighbouring clusters on
// physically adjacent hypercube nodes.
//
// Baseline mappings (Linear, Random) and mapping quality metrics are
// provided for the ablation experiments.
package mapping

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/ints"
)

// Item is one mappable task: a partitioned block with its lattice
// coordinates along the grouping/auxiliary axes.
type Item struct {
	// ID is the block/TIG vertex id.
	ID int
	// Component separates region-growing components; blocks of different
	// components are never interleaved inside a sort.
	Component int
	// Coords are the block's integer lattice coordinates (axis 0 is the
	// grouping vector, axis 1+j the j-th auxiliary vector).
	Coords []int64
}

// AxisPolicy selects how Phase I chooses the bisection axis at each step.
type AxisPolicy int

const (
	// RoundRobin is the paper's rule: axis = step mod numAxes.
	RoundRobin AxisPolicy = iota
	// WidestFirst picks the axis with the widest coordinate span inside
	// the largest cluster (ablation alternative).
	WidestFirst
)

// ErrCubeTooSmall is returned when the target hypercube cannot satisfy the
// requested placement — with Options.Exclusive, a cube with fewer nodes
// than there are blocks.
var ErrCubeTooSmall = errors.New("mapping: cube too small")

// maxCubeDim bounds the hypercube dimension Algorithm 2 will materialize:
// the result allocates per-node cluster slices, so an unchecked dimension
// from external input could exhaust memory.
const maxCubeDim = 30

// Options tunes Algorithm 2.
type Options struct {
	Policy AxisPolicy
	// Exclusive demands one block per node — the fine-grain regime where
	// every partitioned block is an independent task. Mapping fails with
	// ErrCubeTooSmall when the cube has fewer nodes than blocks. The
	// default (false) follows the paper: clusters of blocks share nodes.
	Exclusive bool
}

// Result is a completed mapping of blocks onto a hypercube.
type Result struct {
	Cube hypercube.Cube
	// NodeOf[blockID] is the hypercube node the block is placed on.
	NodeOf []int
	// Clusters[node] lists the block IDs placed on that node.
	Clusters [][]int
	// BitsPerAxis records p_i, the number of bisections along each axis.
	BitsPerAxis []int
}

// MapItems runs Algorithm 2 on the given items for a dim-dimensional cube.
func MapItems(items []Item, dim int, opt Options) (*Result, error) {
	if len(items) == 0 {
		return nil, errors.New("mapping: no items")
	}
	if dim < 0 {
		return nil, fmt.Errorf("mapping: negative cube dimension %d", dim)
	}
	if dim > maxCubeDim {
		return nil, fmt.Errorf("mapping: cube dimension %d exceeds the supported maximum %d", dim, maxCubeDim)
	}
	if opt.Exclusive && int64(len(items)) > int64(1)<<dim {
		return nil, fmt.Errorf("%w: exclusive placement of %d blocks needs more than the 2^%d available nodes", ErrCubeTooSmall, len(items), dim)
	}
	maxID := 0
	for _, it := range items {
		if it.ID < 0 {
			return nil, fmt.Errorf("mapping: negative item ID %d", it.ID)
		}
		if it.ID > maxID {
			maxID = it.ID
		}
	}

	// Normalize coordinate arity; items with no coordinates sort by ID,
	// which follows the lexicographic order of the projected points.
	axes := 0
	for _, it := range items {
		if len(it.Coords) > axes {
			axes = len(it.Coords)
		}
	}
	if axes == 0 {
		axes = 1
	}
	coord := func(it Item, a int) int64 {
		if len(it.Coords) == 0 {
			if a == 0 {
				return int64(it.ID)
			}
			return 0
		}
		if a < len(it.Coords) {
			return it.Coords[a]
		}
		return 0
	}

	// cluster carries its member items plus the per-axis slice index
	// accumulated over the bisections.
	type cluster struct {
		items   []Item
		axisIdx []int
	}
	clusters := []cluster{{items: append([]Item{}, items...), axisIdx: make([]int, axes)}}
	bits := make([]int, axes)

	chooseAxis := func(step int) int {
		switch opt.Policy {
		case WidestFirst:
			// Widest coordinate span inside the largest cluster.
			var biggest *cluster
			for i := range clusters {
				if biggest == nil || len(clusters[i].items) > len(biggest.items) {
					biggest = &clusters[i]
				}
			}
			bestAxis, bestSpan := 0, int64(-1)
			for a := 0; a < axes; a++ {
				var mn, mx int64
				for i, it := range biggest.items {
					c := coord(it, a)
					if i == 0 || c < mn {
						mn = c
					}
					if i == 0 || c > mx {
						mx = c
					}
				}
				if span := mx - mn; span > bestSpan {
					bestAxis, bestSpan = a, span
				}
			}
			return bestAxis
		default:
			return step % axes
		}
	}

	for step := 0; step < dim; step++ {
		axis := chooseAxis(step)
		bits[axis]++
		var next []cluster
		for _, cl := range clusters {
			sort.SliceStable(cl.items, func(i, j int) bool {
				a, b := cl.items[i], cl.items[j]
				if a.Component != b.Component {
					return a.Component < b.Component
				}
				if ca, cb := coord(a, axis), coord(b, axis); ca != cb {
					return ca < cb
				}
				// Tie-break on the remaining axes, then ID, for determinism.
				for o := 0; o < axes; o++ {
					if o == axis {
						continue
					}
					if ca, cb := coord(a, o), coord(b, o); ca != cb {
						return ca < cb
					}
				}
				return a.ID < b.ID
			})
			mid := (len(cl.items) + 1) / 2
			lo := cluster{items: cl.items[:mid], axisIdx: append([]int{}, cl.axisIdx...)}
			hi := cluster{items: cl.items[mid:], axisIdx: append([]int{}, cl.axisIdx...)}
			lo.axisIdx[axis] = cl.axisIdx[axis] * 2
			hi.axisIdx[axis] = cl.axisIdx[axis]*2 + 1
			next = append(next, lo, hi)
		}
		clusters = next
	}

	// Phase II: per-axis Gray fields concatenated into the node address,
	// axis 0 in the most significant position.
	shift := make([]int, axes)
	total := 0
	for a := axes - 1; a >= 0; a-- {
		shift[a] = total
		total += bits[a]
	}
	res := &Result{
		Cube:        hypercube.New(dim),
		NodeOf:      make([]int, maxID+1),
		BitsPerAxis: bits,
	}
	for i := range res.NodeOf {
		res.NodeOf[i] = -1
	}
	res.Clusters = make([][]int, res.Cube.N)
	for _, cl := range clusters {
		node := 0
		for a := 0; a < axes; a++ {
			g := int(ints.Gray(uint64(cl.axisIdx[a])))
			node |= g << uint(shift[a])
		}
		for _, it := range cl.items {
			res.NodeOf[it.ID] = node
			res.Clusters[node] = append(res.Clusters[node], it.ID)
		}
	}
	for node := range res.Clusters {
		sort.Ints(res.Clusters[node])
	}
	return res, nil
}

// ItemsOf converts a partitioning's groups into mappable items.
func ItemsOf(p *core.Partitioning) []Item {
	items := make([]Item, len(p.Groups))
	for i, g := range p.Groups {
		items[i] = Item{ID: g.ID, Component: g.Component, Coords: g.Coords}
	}
	return items
}

// MapPartitioning runs Algorithm 2 on a partitioning for a dim-cube.
func MapPartitioning(p *core.Partitioning, dim int, opt Options) (*Result, error) {
	return MapItems(ItemsOf(p), dim, opt)
}

// Linear assigns blocks to nodes in contiguous ID chunks with plain binary
// node numbering — the no-Gray, no-locality baseline.
func Linear(numBlocks, dim int) (*Result, error) {
	if numBlocks <= 0 {
		return nil, errors.New("mapping: no blocks")
	}
	res := &Result{Cube: hypercube.New(dim), NodeOf: make([]int, numBlocks)}
	res.Clusters = make([][]int, res.Cube.N)
	per := (numBlocks + res.Cube.N - 1) / res.Cube.N
	for b := 0; b < numBlocks; b++ {
		node := b / per
		res.NodeOf[b] = node
		res.Clusters[node] = append(res.Clusters[node], b)
	}
	return res, nil
}

// Greedy places blocks one at a time, heaviest first, each on the node
// minimizing a combined cost of added communication (hop-weight to
// already-placed TIG neighbours) and load imbalance — a classic
// list-placement heuristic in the spirit of the paper's task-allocation
// citations, as a comparator for Algorithm 2's structured bisection.
// commWeight scales the communication term relative to load (0 degenerates
// to pure load balancing).
func Greedy(t *core.TIG, dim int, commWeight float64) (*Result, error) {
	if t.N == 0 {
		return nil, errors.New("mapping: empty TIG")
	}
	res := &Result{Cube: hypercube.New(dim), NodeOf: make([]int, t.N)}
	res.Clusters = make([][]int, res.Cube.N)
	for b := range res.NodeOf {
		res.NodeOf[b] = -1
	}
	order := make([]int, t.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return t.Loads[order[a]] > t.Loads[order[b]] })

	// Capacity bound keeps the placement balanced: without it the comm
	// term would pile every block onto one node (zero hops, no
	// parallelism). A node is eligible while its load stays within the
	// perfectly balanced share, rounded up; the heaviest single block is
	// always placeable.
	var total, maxBlock int64
	for _, l := range t.Loads {
		total += l
		if l > maxBlock {
			maxBlock = l
		}
	}
	capLoad := (total + int64(res.Cube.N) - 1) / int64(res.Cube.N)
	if capLoad < maxBlock {
		capLoad = maxBlock
	}

	loads := make([]int64, res.Cube.N)
	// Undirected communication weights per block pair.
	comm := func(a, b int) int64 { return t.Weight(a, b) + t.Weight(b, a) }
	for _, blk := range order {
		bestNode := -1
		bestCost := 0.0
		for node := 0; node < res.Cube.N; node++ {
			if loads[node]+t.Loads[blk] > capLoad && bestNode >= 0 {
				continue
			}
			cost := float64(loads[node] + t.Loads[blk])
			for other := 0; other < t.N; other++ {
				if res.NodeOf[other] < 0 {
					continue
				}
				if w := comm(blk, other); w > 0 {
					cost += commWeight * float64(w) * float64(res.Cube.Distance(node, res.NodeOf[other]))
				}
			}
			overCap := loads[node]+t.Loads[blk] > capLoad
			bestOver := bestNode >= 0 && loads[bestNode]+t.Loads[blk] > capLoad
			better := bestNode < 0 || (bestOver && !overCap) || (overCap == bestOver && cost < bestCost)
			if better {
				bestNode, bestCost = node, cost
			}
		}
		res.NodeOf[blk] = bestNode
		loads[bestNode] += t.Loads[blk]
		res.Clusters[bestNode] = append(res.Clusters[bestNode], blk)
	}
	for node := range res.Clusters {
		sort.Ints(res.Clusters[node])
	}
	return res, nil
}

// Random assigns blocks to nodes uniformly at random (load-balanced by
// round-robin over a shuffled block order) — the locality-free baseline.
func Random(numBlocks, dim int, seed int64) (*Result, error) {
	if numBlocks <= 0 {
		return nil, errors.New("mapping: no blocks")
	}
	res := &Result{Cube: hypercube.New(dim), NodeOf: make([]int, numBlocks)}
	res.Clusters = make([][]int, res.Cube.N)
	perm := rand.New(rand.NewSource(seed)).Perm(numBlocks)
	for i, b := range perm {
		node := i % res.Cube.N
		res.NodeOf[b] = node
		res.Clusters[node] = append(res.Clusters[node], b)
	}
	for node := range res.Clusters {
		sort.Ints(res.Clusters[node])
	}
	return res, nil
}

// Stats quantifies mapping quality against a TIG.
type Stats struct {
	// HopWeight is Σ over TIG edges of weight × hop distance — the total
	// link traffic the mapping induces.
	HopWeight int64
	// RemoteWeight is Σ of weights whose endpoints sit on different nodes
	// (traffic that actually crosses the network).
	RemoteWeight int64
	// MaxDilation is the largest hop distance of any TIG edge with
	// endpoints on different nodes (0 when everything is local).
	MaxDilation int
	// MaxLoad and MinLoad are the extreme per-node computation loads.
	MaxLoad, MinLoad int64
}

// Evaluate computes mapping statistics for a hypercube mapping.
func Evaluate(t *core.TIG, r *Result) Stats {
	return EvaluateGeneral(t, r.NodeOf, r.Cube.N, r.Cube.Distance)
}
